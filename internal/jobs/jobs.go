// Package jobs is the multi-tenant layer over the single-resolution
// farmer: a keyed job table sharing one grid across many concurrent B&B
// resolutions. Each job owns a private farmer (its INTERVALS and SOLUTION
// files, §4.1–§4.4 of the paper, unchanged), a checkpoint namespace under
// one shared store directory, and a fair share of the fleet.
//
// The table itself implements transport.Coordinator, so the existing RPC
// server serves it without modification. Routing is by the optional Job
// tag on the three protocol messages (empty UpdateInterval/ReportSolution
// tags mean the default job — what pre-multitenant workers are). An
// untagged RequestWork is answered by whichever running job has the
// smallest weighted fleet power — deficit-based fair share: the job
// furthest below its entitled slice of the grid gets the next worker.
// Within the chosen job, the paper's §4.2 selection and partitioning
// operators decide which interval to donate, exactly as before.
package jobs

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"sync"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/interval"
	"repro/internal/transport"
)

// State is a job's position in its lifecycle.
type State int

const (
	// Queued: admitted but waiting for a running slot.
	Queued State = iota
	// Running: owns a live farmer and receives traffic.
	Running
	// Done: the resolution completed — INTERVALS drained, optimum proven.
	Done
	// Cancelled: stopped by the operator before completion. The last
	// checkpoint (if any) stays on disk, so a cancelled job can be
	// resubmitted under the same id and resume where it left off.
	Cancelled
	// Failed: the job could not start (checkpoint store failure).
	Failed
	// Quarantined: the job's checkpoint was corrupt beyond fallback at
	// resume time (checkpoint.ErrCorrupt). The corrupt files sit in the
	// store's quarantine directory, the load error is queryable, and the
	// rest of the table keeps running — one bad disk sector must not
	// block service restart. Resubmitting the id starts the job over
	// from whatever the store still holds (usually nothing).
	Quarantined
)

// String renders the state for logs and the HTTP API.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Cancelled:
		return "cancelled"
	case Failed:
		return "failed"
	case Quarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// maxWeight bounds a job's fair-share weight. The bound is policy, not
// arithmetic — shares compare through a full 128-bit product — but a
// weight ceiling keeps one tenant from dwarfing everyone else by typo.
const maxWeight = 1 << 20

// Config shapes a Table.
type Config struct {
	// MaxActive bounds concurrently running jobs; zero means 8.
	MaxActive int
	// MaxQueued bounds the admission queue; zero means 64.
	MaxQueued int
	// MaxPerUser bounds one owner's queued+running jobs; zero means
	// unlimited.
	MaxPerUser int
	// Store, when non-nil, gives every job a checkpoint namespace under
	// one directory; Submit resumes from an existing namespace.
	Store *checkpoint.Store
	// Clock and LeaseTTL pass through to every job's farmer.
	Clock    func() int64
	LeaseTTL time.Duration
	// KeepAlive makes an empty table answer untagged work requests with
	// WorkWait instead of WorkFinished: a live service expects more
	// submissions, a batch harness wants workers to drain and stop.
	KeepAlive bool
	// FarmerOptions are applied to every job's farmer, before the
	// table-provided clock/TTL/store options.
	FarmerOptions []farmer.Option
	// Wrap, when non-nil, intercepts each job's protocol endpoint — the
	// conformance harness hangs its per-job tracker here. Progress and
	// fair-share accounting still read the farmer directly.
	Wrap func(id string, f *farmer.Farmer) transport.Coordinator
}

// Counters tallies table-level events. Every hostile or misaddressed
// message lands in exactly one rejection counter and mutates nothing else
// — the same boundary discipline the farmer applies to intervals.
type Counters struct {
	// Submitted, Resumed, Completed, Cancelled count job lifecycle
	// transitions (Resumed is the subset of Submitted that restored a
	// checkpoint namespace).
	Submitted, Resumed, Completed, Cancelled int64
	// RejectedSubmits counts submissions refused by admission control:
	// duplicate id, full queue, or a per-user cap.
	RejectedSubmits int64
	// InvalidJobIDs counts messages naming a job id that cannot be a
	// checkpoint namespace (empty after defaulting, oversize, or with
	// path-capable bytes).
	InvalidJobIDs int64
	// UnknownJobs counts messages naming a well-formed id the table has
	// never seen.
	UnknownJobs int64
	// StoppedJobTraffic counts messages addressed to a cancelled, done,
	// or failed job; they are answered with a terminal verdict (the
	// worker must drop that job) and touch no interval state.
	StoppedJobTraffic int64
	// FairShareAssignments counts untagged work requests that the
	// deficit rule routed to a job.
	FairShareAssignments int64
	// QuarantinedJobs counts jobs whose checkpoint was corrupt beyond
	// fallback at start — each one is parked in the Quarantined state
	// with its load error, never silently dropped.
	QuarantinedJobs int64
	// CorruptSnapshots and FallbackLoads aggregate the shared store's
	// self-healing counters (checkpoint.Stats) across every namespace:
	// files quarantined and loads served from a previous generation.
	CorruptSnapshots, FallbackLoads int64
}

// job is one tenant resolution.
type job struct {
	id     string
	spec   Spec
	weight int64
	seq    int64
	state  State
	err    error

	factory func() bb.Problem
	root    interval.Interval
	rootLen *big.Int

	f     *farmer.Farmer        // live while Running (kept after Done for inspection)
	coord transport.Coordinator // f, possibly wrapped

	// Terminal snapshot, captured when the farmer is dropped (Cancelled)
	// or the job completes, so Progress stays answerable forever.
	best bb.Solution
	ctrs farmer.Counters
}

// Table is the multi-tenant coordinator. Safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	cfg     Config
	jobs    map[string]*job
	order   []*job // every job ever admitted, in submission order
	queue   []*job // admitted, waiting for a slot (FIFO)
	running []*job // live jobs, in submission order
	seq     int64
	ctr     Counters
}

// NewTable builds an empty job table.
func NewTable(cfg Config) *Table {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 8
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 64
	}
	return &Table{cfg: cfg, jobs: make(map[string]*job)}
}

// clipID bounds an attacker-chosen id for error messages.
func clipID(id string) string {
	if len(id) > 40 {
		return id[:40] + "..."
	}
	return id
}

// Submit admits a job under id. The id doubles as the job's checkpoint
// namespace, so it must satisfy checkpoint.ValidNamespace. If the table's
// store already holds a checkpoint under that namespace, the job resumes
// from it instead of starting fresh — this is both crash recovery and the
// cancel/resubmit pause button.
func (tb *Table) Submit(id string, spec Spec) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if !checkpoint.ValidNamespace(id) {
		tb.ctr.InvalidJobIDs++
		return fmt.Errorf("jobs: invalid job id %q", clipID(id))
	}
	if j, ok := tb.jobs[id]; ok && j.state != Cancelled && j.state != Failed && j.state != Quarantined {
		tb.ctr.RejectedSubmits++
		return fmt.Errorf("jobs: job %q already exists (%s)", id, j.state)
	}
	factory, err := spec.Factory()
	if err != nil {
		tb.ctr.RejectedSubmits++
		return err
	}
	if tb.cfg.MaxPerUser > 0 {
		live := 0
		for _, j := range tb.jobs {
			if j.spec.Owner == spec.Owner && (j.state == Queued || j.state == Running) {
				live++
			}
		}
		if live >= tb.cfg.MaxPerUser {
			tb.ctr.RejectedSubmits++
			return fmt.Errorf("jobs: owner %q already has %d live jobs (cap %d)",
				spec.Owner, live, tb.cfg.MaxPerUser)
		}
	}
	if len(tb.running) >= tb.cfg.MaxActive && len(tb.queue) >= tb.cfg.MaxQueued {
		tb.ctr.RejectedSubmits++
		return fmt.Errorf("jobs: admission queue full (%d running, %d queued)",
			len(tb.running), len(tb.queue))
	}
	weight := spec.Weight
	if weight <= 0 {
		weight = 1
	}
	if weight > maxWeight {
		weight = maxWeight
	}
	nb := core.NewNumbering(factory().Shape())
	root := nb.RootRange()
	tb.seq++
	j := &job{
		id:      id,
		spec:    spec,
		weight:  weight,
		seq:     tb.seq,
		factory: factory,
		root:    root,
		rootLen: root.Len(),
		best:    bb.Solution{Cost: bb.Infinity},
	}
	tb.jobs[id] = j
	tb.order = append(tb.order, j)
	tb.ctr.Submitted++
	if len(tb.running) < tb.cfg.MaxActive {
		return tb.startLocked(j)
	}
	j.state = Queued
	tb.queue = append(tb.queue, j)
	return nil
}

// startLocked brings an admitted job live: build (or restore) its farmer
// and enter it into the running set.
func (tb *Table) startLocked(j *job) error {
	opts := append([]farmer.Option{}, tb.cfg.FarmerOptions...)
	if tb.cfg.Clock != nil {
		opts = append(opts, farmer.WithClock(tb.cfg.Clock))
	}
	if tb.cfg.LeaseTTL > 0 {
		opts = append(opts, farmer.WithLeaseTTL(tb.cfg.LeaseTTL))
	}
	if j.spec.InitialUpper != 0 {
		opts = append(opts, farmer.WithInitialBest(j.spec.InitialUpper, nil))
	}
	var ns *checkpoint.Store
	if tb.cfg.Store != nil {
		var err error
		ns, err = tb.cfg.Store.Namespace(j.id)
		if err != nil {
			j.state = Failed
			j.err = err
			return fmt.Errorf("jobs: start %q: %w", j.id, err)
		}
		opts = append(opts, farmer.WithCheckpointStore(ns))
	}
	if ns != nil && ns.Exists() {
		f, err := farmer.Restore(j.root, ns, opts...)
		if err != nil {
			// A corrupt snapshot with no generation left to fall back to
			// quarantines this one job; any other failure is Failed. Either
			// way the job stays in the table with its error, and the rest
			// of the service is unaffected.
			if errors.Is(err, checkpoint.ErrCorrupt) {
				j.state = Quarantined
				tb.ctr.QuarantinedJobs++
			} else {
				j.state = Failed
			}
			j.err = err
			return fmt.Errorf("jobs: resume %q: %w", j.id, err)
		}
		j.f = f
		tb.ctr.Resumed++
	} else {
		j.f = farmer.New(j.root, opts...)
	}
	j.coord = j.f
	if tb.cfg.Wrap != nil {
		j.coord = tb.cfg.Wrap(j.id, j.f)
	}
	j.state = Running
	tb.running = append(tb.running, j)
	return nil
}

// finishLocked retires a completed job and promotes the queue head into
// the freed slot.
func (tb *Table) finishLocked(j *job) {
	if j.state != Running {
		return
	}
	j.state = Done
	j.best = j.f.Best()
	j.ctrs = j.f.Counters()
	tb.dropRunningLocked(j)
	tb.ctr.Completed++
	tb.promoteLocked()
}

// promoteLocked starts queued jobs while slots are free. A promotion that
// fails to start (checkpoint store trouble) is marked Failed and the next
// queued job gets its chance.
func (tb *Table) promoteLocked() {
	for len(tb.running) < tb.cfg.MaxActive && len(tb.queue) > 0 {
		next := tb.queue[0]
		tb.queue = tb.queue[1:]
		_ = tb.startLocked(next) // Failed state recorded on the job itself
	}
}

func (tb *Table) dropRunningLocked(j *job) {
	for i, r := range tb.running {
		if r == j {
			tb.running = append(tb.running[:i], tb.running[i+1:]...)
			return
		}
	}
}

// Cancel stops a queued or running job. Its incumbent and counters stay
// queryable; its checkpoint files (if any) stay on disk so a resubmission
// under the same id resumes from them.
func (tb *Table) Cancel(id string) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if !checkpoint.ValidNamespace(id) {
		tb.ctr.InvalidJobIDs++
		return fmt.Errorf("jobs: invalid job id %q", clipID(id))
	}
	j, ok := tb.jobs[id]
	if !ok {
		tb.ctr.UnknownJobs++
		return fmt.Errorf("jobs: unknown job %q", id)
	}
	switch j.state {
	case Queued:
		for i, q := range tb.queue {
			if q == j {
				tb.queue = append(tb.queue[:i], tb.queue[i+1:]...)
				break
			}
		}
	case Running:
		j.best = j.f.Best()
		j.ctrs = j.f.Counters()
		j.f = nil
		j.coord = nil
		tb.dropRunningLocked(j)
		defer tb.promoteLocked()
	default:
		return fmt.Errorf("jobs: job %q is already %s", id, j.state)
	}
	j.state = Cancelled
	tb.ctr.Cancelled++
	return nil
}

// shareLess reports whether job a's weighted fleet share (fa/wa) is
// strictly below job b's (fb/wb), compared exactly as fa·wb < fb·wa in
// 128 bits — no overflow, no float drift, so the pick is deterministic.
func shareLess(fa, wa, fb, wb int64) bool {
	hi1, lo1 := bits.Mul64(uint64(fa), uint64(wb))
	hi2, lo2 := bits.Mul64(uint64(fb), uint64(wa))
	return hi1 < hi2 || (hi1 == hi2 && lo1 < lo2)
}

// pickLocked applies the fair-share rule: among running jobs, the one
// with the smallest fleet-power-per-weight is furthest below its
// entitlement and receives the next worker. Ties go to the earliest
// submission. Leases are expired first so a job whose workers all died
// does not look saturated forever.
func (tb *Table) pickLocked() *job {
	var best *job
	var bf, bw int64
	for _, j := range tb.running {
		j.f.ExpireNow()
		fp := j.f.FleetPower()
		if best == nil || shareLess(fp, j.weight, bf, bw) {
			best, bf, bw = j, fp, j.weight
		}
	}
	return best
}

// routeLocked resolves a message's job tag to a live table entry,
// charging the appropriate rejection counter on failure. An empty tag is
// a pre-multitenant sender: it resolves to the job named by the default
// checkpoint namespace, or — when no such job exists and exactly one job
// is running — to that sole job, so a legacy single-job fleet works
// whatever id the operator submitted under. With several jobs live an
// untagged fold is genuinely ambiguous and stays an error.
func (tb *Table) routeLocked(id string) (*job, error) {
	if id == "" {
		id = checkpoint.DefaultNamespace
		if _, ok := tb.jobs[id]; !ok && len(tb.running) == 1 && len(tb.queue) == 0 {
			return tb.running[0], nil
		}
	}
	if !checkpoint.ValidNamespace(id) {
		tb.ctr.InvalidJobIDs++
		return nil, fmt.Errorf("jobs: invalid job id %q", clipID(id))
	}
	j, ok := tb.jobs[id]
	if !ok {
		tb.ctr.UnknownJobs++
		return nil, fmt.Errorf("jobs: unknown job %q", id)
	}
	return j, nil
}

// RequestWork implements transport.Coordinator. A tagged request is
// pinned to its job; an untagged one is routed by fair share, and the
// reply's Job field tells the worker which table it must fold into.
func (tb *Table) RequestWork(req transport.WorkRequest) (transport.WorkReply, error) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if req.Job != "" {
		j, err := tb.routeLocked(req.Job)
		if err != nil {
			return transport.WorkReply{}, err
		}
		switch j.state {
		case Queued:
			return transport.WorkReply{Status: transport.WorkWait, BestCost: j.best.Cost, Job: j.id}, nil
		case Running:
			rep, err := j.coord.RequestWork(req)
			if err != nil {
				return rep, err
			}
			rep.Job = j.id
			if rep.Status == transport.WorkFinished {
				tb.finishLocked(j)
			}
			return rep, nil
		default: // Done, Cancelled, Failed
			tb.ctr.StoppedJobTraffic++
			return transport.WorkReply{Status: transport.WorkFinished, BestCost: j.best.Cost, Job: j.id}, nil
		}
	}
	// Fair share: try jobs in deficit order until one donates. A job
	// answering WorkFinished is retired on the spot and the next-most
	// starved candidate gets the request.
	for {
		j := tb.pickLocked()
		if j == nil {
			break
		}
		rep, err := j.coord.RequestWork(req)
		if err != nil {
			// A boundary rejection (bad power, oversize id) is about
			// the requester, not the job; no other job would answer
			// differently.
			return rep, err
		}
		switch rep.Status {
		case transport.WorkAssigned:
			tb.ctr.FairShareAssignments++
			rep.Job = j.id
			return rep, nil
		case transport.WorkWait:
			rep.Job = j.id
			return rep, nil
		default: // WorkFinished: this job just drained
			tb.finishLocked(j)
		}
	}
	if tb.cfg.KeepAlive || len(tb.queue) > 0 {
		return transport.WorkReply{Status: transport.WorkWait, BestCost: bb.Infinity}, nil
	}
	return transport.WorkReply{Status: transport.WorkFinished, BestCost: bb.Infinity}, nil
}

// UpdateInterval implements transport.Coordinator: the fold is routed to
// the job named by the tag. A fold for a stopped job answers
// Known:false/Finished:true — the worker drops the interval and, if it is
// a single-job worker, stops; interval state is never touched.
func (tb *Table) UpdateInterval(req transport.UpdateRequest) (transport.UpdateReply, error) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	j, err := tb.routeLocked(req.Job)
	if err != nil {
		return transport.UpdateReply{}, err
	}
	switch j.state {
	case Running:
		rep, err := j.coord.UpdateInterval(req)
		if err != nil {
			return rep, err
		}
		if rep.Finished {
			tb.finishLocked(j)
		}
		return rep, nil
	case Queued:
		// A queued job has no farmer yet, so no interval of it can be
		// legitimately held; the fold is misaddressed.
		tb.ctr.StoppedJobTraffic++
		return transport.UpdateReply{Known: false, BestCost: j.best.Cost}, nil
	default:
		tb.ctr.StoppedJobTraffic++
		return transport.UpdateReply{Known: false, Finished: true, BestCost: j.best.Cost}, nil
	}
}

// ReportSolution implements transport.Coordinator: the incumbent goes to
// the named job's SOLUTION file and never crosses jobs.
func (tb *Table) ReportSolution(req transport.SolutionReport) (transport.SolutionAck, error) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	j, err := tb.routeLocked(req.Job)
	if err != nil {
		return transport.SolutionAck{}, err
	}
	if j.state != Running {
		tb.ctr.StoppedJobTraffic++
		return transport.SolutionAck{BestCost: j.best.Cost}, nil
	}
	return j.coord.ReportSolution(req)
}

// Progress is a job's externally visible state.
type Progress struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Domain string `json:"domain"`
	Owner  string `json:"owner,omitempty"`
	// FrontierPct is the explored fraction of the root range, in percent
	// — how much of INTERVALS has drained.
	FrontierPct float64 `json:"frontier_pct"`
	// Intervals is the INTERVALS cardinality; FleetPower the summed
	// speed of live owners (the fair-share currency).
	Intervals  int   `json:"intervals"`
	FleetPower int64 `json:"fleet_power"`
	// BestCost/BestPath mirror the job's SOLUTION file. BestCost is
	// bb.Infinity until a first incumbent lands.
	BestCost int64 `json:"best_cost"`
	BestPath []int `json:"best_path,omitempty"`
	// Counters are the job's farmer counters (Table 2 material).
	Counters farmer.Counters `json:"counters"`
	// Error explains a Failed state.
	Error string `json:"error,omitempty"`
}

func (tb *Table) progressLocked(j *job) Progress {
	p := Progress{
		ID:     j.id,
		State:  j.state.String(),
		Domain: j.spec.Domain,
		Owner:  j.spec.Owner,
	}
	switch j.state {
	case Running:
		best := j.f.Best()
		p.BestCost, p.BestPath = best.Cost, best.Path
		p.Counters = j.f.Counters()
		p.FleetPower = j.f.FleetPower()
		card, total := j.f.Size()
		p.Intervals = card
		rem, _ := new(big.Rat).SetFrac(total, j.rootLen).Float64()
		p.FrontierPct = (1 - rem) * 100
	case Done:
		p.BestCost, p.BestPath = j.best.Cost, j.best.Path
		p.Counters = j.ctrs
		p.FrontierPct = 100
	default:
		p.BestCost, p.BestPath = j.best.Cost, j.best.Path
		p.Counters = j.ctrs
	}
	if j.err != nil {
		p.Error = j.err.Error()
	}
	return p
}

// Progress reports one job's live state.
func (tb *Table) Progress(id string) (Progress, error) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	j, ok := tb.jobs[id]
	if !ok {
		return Progress{}, fmt.Errorf("jobs: unknown job %q", clipID(id))
	}
	return tb.progressLocked(j), nil
}

// List reports every job in submission order.
func (tb *Table) List() []Progress {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	out := make([]Progress, 0, len(tb.order))
	for _, j := range tb.order {
		out = append(out, tb.progressLocked(j))
	}
	return out
}

// Done reports whether every admitted job reached a terminal state.
func (tb *Table) Done() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return len(tb.running) == 0 && len(tb.queue) == 0
}

// Checkpoint snapshots every running job's farmer into its namespace.
func (tb *Table) Checkpoint() error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	var first error
	for _, j := range tb.running {
		if err := j.f.Checkpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Counters returns the table-level tallies.
func (tb *Table) Counters() Counters {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	c := tb.ctr
	if tb.cfg.Store != nil {
		st := tb.cfg.Store.Stats()
		c.CorruptSnapshots = st.CorruptSnapshots
		c.FallbackLoads = st.FallbackLoads
	}
	return c
}

// Farmer exposes a running job's farmer for tests and local tooling; nil
// when the job is not running.
func (tb *Table) Farmer(id string) *farmer.Farmer {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if j, ok := tb.jobs[id]; ok && j.state == Running {
		return j.f
	}
	return nil
}
