package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/knapsack"
	"repro/internal/transport"
	"repro/internal/tsp"
	"repro/internal/worker"
)

func knapSpec(n int, seed int64) Spec {
	return Spec{Domain: "knapsack", N: n, Seed: seed}
}

// drain runs one mux worker session against the table to completion.
func drain(t *testing.T, tb *Table, specs map[string]Spec) *WorkerSession {
	t.Helper()
	sess := NewWorkerSession(WorkerConfig{ID: "w0", Power: 100, UpdatePeriodNodes: 1 << 10},
		tb, SpecFactories(specs))
	for i := 0; ; i++ {
		_, fin, err := sess.Advance(1 << 14)
		if err != nil {
			t.Fatal(err)
		}
		if fin {
			return sess
		}
		if i > 10_000 {
			t.Fatal("worker never finished")
		}
	}
}

func TestSingleJobSolvesToOptimum(t *testing.T) {
	spec := knapSpec(18, 3)
	want, _ := bb.Solve(knapsack.NewProblem(knapsack.Random(18, 3)), bb.Infinity)
	tb := NewTable(Config{})
	if err := tb.Submit("k18", spec); err != nil {
		t.Fatal(err)
	}
	drain(t, tb, map[string]Spec{"k18": spec})
	p, err := tb.Progress("k18")
	if err != nil {
		t.Fatal(err)
	}
	if p.State != "done" || p.BestCost != want.Cost {
		t.Fatalf("job state %s cost %d, want done/%d", p.State, p.BestCost, want.Cost)
	}
	if p.FrontierPct != 100 {
		t.Fatalf("frontier %.1f%%, want 100", p.FrontierPct)
	}
	if !tb.Done() {
		t.Fatal("table not done after its only job finished")
	}
}

// TestDefaultJobServesLegacyWorkers: a pre-multitenant worker.Session
// (no Job tags anywhere) solves a job named "default" through the table.
func TestDefaultJobServesLegacyWorkers(t *testing.T) {
	spec := knapSpec(18, 7)
	want, _ := bb.Solve(knapsack.NewProblem(knapsack.Random(18, 7)), bb.Infinity)
	tb := NewTable(Config{})
	if err := tb.Submit(checkpoint.DefaultNamespace, spec); err != nil {
		t.Fatal(err)
	}
	sess := worker.NewSession(worker.Config{ID: "legacy", Power: 50, UpdatePeriodNodes: 1 << 10},
		tb, knapsack.NewProblem(knapsack.Random(18, 7)))
	for i := 0; ; i++ {
		_, fin, err := sess.Advance(1 << 14)
		if err != nil {
			t.Fatal(err)
		}
		if fin {
			break
		}
		if i > 10_000 {
			t.Fatal("legacy worker never finished")
		}
	}
	p, _ := tb.Progress(checkpoint.DefaultNamespace)
	if p.BestCost != want.Cost {
		t.Fatalf("legacy worker proved %d, want %d", p.BestCost, want.Cost)
	}
}

// TestSoleJobServesLegacyWorkers: the single-job deployment story must
// not hinge on the operator picking the magic "default" id — an untagged
// legacy fleet's folds and reports route to the sole running job whatever
// it is named. (Caught live: a legacy worker against a one-job jobd
// reconnect-looped forever on "unknown job default" and never explored a
// node.) With a second job live the ambiguity is real and untagged
// non-request traffic goes back to being an error.
func TestSoleJobServesLegacyWorkers(t *testing.T) {
	spec := knapSpec(18, 7)
	want, _ := bb.Solve(knapsack.NewProblem(knapsack.Random(18, 7)), bb.Infinity)
	tb := NewTable(Config{})
	if err := tb.Submit("ops-picked-a-name", spec); err != nil {
		t.Fatal(err)
	}
	sess := worker.NewSession(worker.Config{ID: "legacy", Power: 50, UpdatePeriodNodes: 1 << 10},
		tb, knapsack.NewProblem(knapsack.Random(18, 7)))
	for i := 0; ; i++ {
		_, fin, err := sess.Advance(1 << 14)
		if err != nil {
			t.Fatal(err)
		}
		if fin {
			break
		}
		if i > 10_000 {
			t.Fatal("legacy worker never finished")
		}
	}
	p, _ := tb.Progress("ops-picked-a-name")
	if p.State != "done" || p.BestCost != want.Cost {
		t.Fatalf("legacy worker left job %s at %d, want done/%d", p.State, p.BestCost, want.Cost)
	}

	// Two running jobs: untagged folds and reports are ambiguous again.
	tb2 := NewTable(Config{})
	if err := tb2.Submit("one", knapSpec(14, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tb2.Submit("two", knapSpec(14, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb2.UpdateInterval(transport.UpdateRequest{Worker: "legacy"}); err == nil {
		t.Fatal("untagged update accepted with two jobs running")
	}
	if _, err := tb2.ReportSolution(transport.SolutionReport{Worker: "legacy", Cost: 1}); err == nil {
		t.Fatal("untagged report accepted with two jobs running")
	}
	if tb2.Counters().UnknownJobs != 2 {
		t.Fatalf("UnknownJobs %d, want 2", tb2.Counters().UnknownJobs)
	}
}

func TestAdmissionControl(t *testing.T) {
	tb := NewTable(Config{MaxActive: 2, MaxQueued: 2, MaxPerUser: 3})
	for i, id := range []string{"a", "b", "c", "d"} {
		s := knapSpec(12, int64(i))
		s.Owner = "alice"
		if i == 3 {
			s.Owner = "bob"
		}
		if err := tb.Submit(id, s); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
	}
	for id, want := range map[string]string{"a": "running", "b": "running", "c": "queued", "d": "queued"} {
		if p, _ := tb.Progress(id); p.State != want {
			t.Errorf("job %s state %s, want %s", id, p.State, want)
		}
	}
	// Queue is full now.
	if err := tb.Submit("e", knapSpec(12, 9)); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("submit into a full queue: %v", err)
	}
	// alice is at her cap (a, b, c live).
	over := knapSpec(12, 10)
	over.Owner = "alice"
	if err := tb.Submit("f", over); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("submit over per-user cap: %v", err)
	}
	// Duplicate id.
	if err := tb.Submit("a", knapSpec(12, 11)); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("duplicate submit: %v", err)
	}
	// Hostile id.
	if err := tb.Submit("../escape", knapSpec(12, 12)); err == nil {
		t.Fatal("hostile job id admitted")
	}
	ctr := tb.Counters()
	if ctr.RejectedSubmits != 3 || ctr.InvalidJobIDs != 1 {
		t.Fatalf("counters %+v", ctr)
	}
	// Cancelling a running job promotes the queue head.
	if err := tb.Cancel("a"); err != nil {
		t.Fatal(err)
	}
	if p, _ := tb.Progress("c"); p.State != "running" {
		t.Errorf("queued job not promoted after cancel: %s", p.State)
	}
	if p, _ := tb.Progress("d"); p.State != "queued" {
		t.Errorf("queue order broken: d is %s", p.State)
	}
}

// TestFairShareHonorsWeights: with weights 1 and 3, eight one-request
// workers split 2/6 across the two jobs.
func TestFairShareHonorsWeights(t *testing.T) {
	tb := NewTable(Config{})
	light := knapSpec(16, 1)
	heavy := knapSpec(16, 2)
	heavy.Weight = 3
	if err := tb.Submit("light", light); err != nil {
		t.Fatal(err)
	}
	if err := tb.Submit("heavy", heavy); err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for i := 0; i < 8; i++ {
		rep, err := tb.RequestWork(transport.WorkRequest{
			Worker: transport.WorkerID(string(rune('a' + i))), Power: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status != transport.WorkAssigned {
			t.Fatalf("request %d: status %v", i, rep.Status)
		}
		got[rep.Job]++
	}
	if got["light"] != 2 || got["heavy"] != 6 {
		t.Fatalf("assignments split %v, want light:2 heavy:6", got)
	}
	if c := tb.Counters(); c.FairShareAssignments != 8 {
		t.Fatalf("FairShareAssignments = %d, want 8", c.FairShareAssignments)
	}
}

func TestCancelResubmitResumesFromCheckpoint(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Domain: "tsp", N: 9, Seed: 2} // ~10k sequential nodes
	want, _ := bb.Solve(tsp.NewProblem(tsp.RandomEuclidean(9, 1000, 2)), bb.Infinity)
	tb := NewTable(Config{Store: store})
	if err := tb.Submit("resume-me", spec); err != nil {
		t.Fatal(err)
	}
	// Explore a little, fold, checkpoint, cancel.
	sess := NewWorkerSession(WorkerConfig{ID: "w0", Power: 100, UpdatePeriodNodes: 256},
		tb, SpecFactories(map[string]Spec{"resume-me": spec}))
	for i := 0; i < 4; i++ {
		if _, _, err := sess.Advance(512); err != nil {
			t.Fatal(err)
		}
	}
	if p, _ := tb.Progress("resume-me"); p.State != "running" {
		t.Fatalf("job already %s after the partial explore — instance too small", p.State)
	}
	if err := tb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Cancel("resume-me"); err != nil {
		t.Fatal(err)
	}
	if p, _ := tb.Progress("resume-me"); p.State != "cancelled" {
		t.Fatalf("state %s after cancel", p.State)
	}
	// Resubmit under the same id: the namespace checkpoint is picked up.
	if err := tb.Submit("resume-me", spec); err != nil {
		t.Fatal(err)
	}
	if c := tb.Counters(); c.Resumed != 1 {
		t.Fatalf("Resumed = %d, want 1", c.Resumed)
	}
	drain(t, tb, map[string]Spec{"resume-me": spec})
	p, _ := tb.Progress("resume-me")
	if p.State != "done" || p.BestCost != want.Cost {
		t.Fatalf("resumed job ended %s/%d, want done/%d", p.State, p.BestCost, want.Cost)
	}
}

// TestStoppedJobTraffic: messages addressed to a cancelled job get
// terminal verdicts, touch nothing, and are counted.
func TestStoppedJobTraffic(t *testing.T) {
	tb := NewTable(Config{})
	if err := tb.Submit("gone", knapSpec(14, 1)); err != nil {
		t.Fatal(err)
	}
	rep, err := tb.RequestWork(transport.WorkRequest{Worker: "w", Power: 10, Job: "gone"})
	if err != nil || rep.Status != transport.WorkAssigned {
		t.Fatalf("seed request: %v %v", rep.Status, err)
	}
	if err := tb.Cancel("gone"); err != nil {
		t.Fatal(err)
	}
	if rep, err := tb.RequestWork(transport.WorkRequest{Worker: "w", Power: 10, Job: "gone"}); err != nil ||
		rep.Status != transport.WorkFinished {
		t.Fatalf("request to cancelled job: %v %v", rep.Status, err)
	}
	urep, err := tb.UpdateInterval(transport.UpdateRequest{
		Worker: "w", IntervalID: rep.IntervalID, Remaining: rep.Interval, Power: 10, Job: "gone",
	})
	if err != nil || urep.Known || !urep.Finished {
		t.Fatalf("update to cancelled job: %+v %v", urep, err)
	}
	if _, err := tb.ReportSolution(transport.SolutionReport{Worker: "w", Cost: 1, Path: []int{0}, Job: "gone"}); err != nil {
		t.Fatalf("report to cancelled job: %v", err)
	}
	if c := tb.Counters(); c.StoppedJobTraffic != 3 {
		t.Fatalf("StoppedJobTraffic = %d, want 3", c.StoppedJobTraffic)
	}
	// Unknown and invalid ids are errors with their own counters.
	if _, err := tb.UpdateInterval(transport.UpdateRequest{Worker: "w", Job: "never-was"}); err == nil {
		t.Fatal("update for unknown job accepted")
	}
	if _, err := tb.RequestWork(transport.WorkRequest{Worker: "w", Power: 10, Job: "bad/id"}); err == nil {
		t.Fatal("request with invalid job id accepted")
	}
	if c := tb.Counters(); c.UnknownJobs != 1 || c.InvalidJobIDs != 1 {
		t.Fatalf("counters %+v", c)
	}
}

// TestKeepAliveHoldsWorkers: a drained keep-alive table answers WorkWait,
// and a later submission puts the same workers back to work.
func TestKeepAliveHoldsWorkers(t *testing.T) {
	tb := NewTable(Config{KeepAlive: true})
	rep, err := tb.RequestWork(transport.WorkRequest{Worker: "w", Power: 10})
	if err != nil || rep.Status != transport.WorkWait {
		t.Fatalf("empty keep-alive table: %v %v", rep.Status, err)
	}
	if err := tb.Submit("late", knapSpec(12, 4)); err != nil {
		t.Fatal(err)
	}
	if rep, err := tb.RequestWork(transport.WorkRequest{Worker: "w", Power: 10}); err != nil ||
		rep.Status != transport.WorkAssigned || rep.Job != "late" {
		t.Fatalf("post-submission request: %+v %v", rep, err)
	}
}

// TestCorruptJobQuarantined: one corrupt checkpoint must not block the
// others — the table restart quarantines that job (with its load error
// queryable) and resumes the rest; resubmitting the quarantined id starts
// it over.
func TestCorruptJobQuarantined(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]Spec{
		"healthy": {Domain: "tsp", N: 9, Seed: 2},
		"rotten":  {Domain: "tsp", N: 9, Seed: 5},
	}
	tb := NewTable(Config{Store: store})
	for id, spec := range specs {
		if err := tb.Submit(id, spec); err != nil {
			t.Fatal(err)
		}
	}
	sess := NewWorkerSession(WorkerConfig{ID: "w0", Power: 100, UpdatePeriodNodes: 256},
		tb, SpecFactories(specs))
	for i := 0; i < 6; i++ {
		if _, _, err := sess.Advance(512); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly one checkpoint: no *.prev generation, so corruption has no
	// fallback and must quarantine.
	if err := tb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "rotten", "intervals.ckpt"),
		[]byte("rotten to the core\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Service restart: fresh table over the same store.
	store2, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb2 := NewTable(Config{Store: store2})
	if err := tb2.Submit("healthy", specs["healthy"]); err != nil {
		t.Fatalf("healthy job blocked by sibling corruption: %v", err)
	}
	err = tb2.Submit("rotten", specs["rotten"])
	if err == nil || !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("rotten submit: err = %v, want ErrCorrupt", err)
	}
	p, err := tb2.Progress("rotten")
	if err != nil {
		t.Fatal(err)
	}
	if p.State != "quarantined" || p.Error == "" {
		t.Fatalf("rotten job: state %s error %q, want quarantined with load error", p.State, p.Error)
	}
	if hp, _ := tb2.Progress("healthy"); hp.State != "running" {
		t.Fatalf("healthy job is %s, want running", hp.State)
	}
	c := tb2.Counters()
	if c.QuarantinedJobs != 1 || c.Resumed != 1 || c.CorruptSnapshots == 0 {
		t.Fatalf("counters %+v, want 1 quarantined / 1 resumed / corruption counted", c)
	}
	// Traffic to the quarantined job gets a terminal verdict, not a hang.
	urep, err := tb2.UpdateInterval(transport.UpdateRequest{Worker: "w", Job: "rotten"})
	if err != nil || urep.Known || !urep.Finished {
		t.Fatalf("update to quarantined job: %+v %v", urep, err)
	}
	// Resubmission starts the job over (the bad files are in quarantine/,
	// not in the namespace).
	if err := tb2.Submit("rotten", specs["rotten"]); err != nil {
		t.Fatalf("resubmit of quarantined job: %v", err)
	}
	if p, _ := tb2.Progress("rotten"); p.State != "running" {
		t.Fatalf("resubmitted job is %s, want running", p.State)
	}
	drain(t, tb2, specs)
	for id := range specs {
		if p, _ := tb2.Progress(id); p.State != "done" {
			t.Fatalf("job %s ended %s", id, p.State)
		}
	}
}
