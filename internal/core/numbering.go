// Package core implements the paper's primary contribution
// (Mezmaz, Melab, Talbi; INRIA RR-5945, §3): a coding of Branch and Bound
// work units as integer intervals. Every node of a regular search tree gets
// a number (eq. 6); the numbers below a node form its range (eq. 7); a
// depth-first active-node list folds into a single interval (eq. 10) and an
// interval unfolds back into the unique minimal active-node list covering it
// (eqs. 11–13). The Explorer type is the interval-driven depth-first B&B
// engine built on this coding.
package core

import (
	"fmt"
	"math/big"

	"repro/internal/interval"
	"repro/internal/tree"
)

// Numbering assigns numbers and ranges to the nodes of a regular tree. It
// precomputes the per-depth weight vector once (paper §3.1: "At the
// beginning of the B&B algorithm, a vector which gives the weight associated
// with each depth is calculated").
type Numbering struct {
	shape   tree.Shape
	weights []*big.Int
}

// NewNumbering builds the numbering of the given shape.
func NewNumbering(s tree.Shape) *Numbering {
	return &Numbering{shape: s, weights: tree.Weights(s)}
}

// Shape returns the tree shape the numbering is defined over.
func (nb *Numbering) Shape() tree.Shape { return nb.shape }

// Depth returns the leaf depth P of the underlying shape.
func (nb *Numbering) Depth() int { return nb.shape.Depth() }

// Weight returns the weight of any node at the given depth: the number of
// leaves of the subtree rooted there (eq. 1, simplified per-depth as in
// eqs. 2–3). The returned value is shared; callers must not mutate it.
func (nb *Numbering) Weight(depth int) *big.Int {
	if depth < 0 || depth >= len(nb.weights) {
		panic(fmt.Sprintf("core: depth %d out of range [0,%d]", depth, len(nb.weights)-1))
	}
	return nb.weights[depth]
}

// LeafCount returns the weight of the root: the total number of leaves.
func (nb *Numbering) LeafCount() *big.Int { return nb.weights[0] }

// Number implements eq. (6): the number of the node identified by the rank
// path is the sum over the path of rank(i)·weight(i). The root (empty path)
// has number 0. Number panics on a malformed path, because a bad path is a
// programming error that would silently corrupt work accounting.
func (nb *Numbering) Number(ranks []int) *big.Int {
	if err := tree.Validate(nb.shape, ranks); err != nil {
		panic(err)
	}
	n := new(big.Int)
	tmp := new(big.Int)
	for d, r := range ranks {
		// The node chosen at path position d lives at depth d+1.
		tmp.SetInt64(int64(r))
		tmp.Mul(tmp, nb.weights[d+1])
		n.Add(n, tmp)
	}
	return n
}

// Range implements eq. (7): the interval of leaf numbers below the node,
// [number(n), number(n)+weight(n)).
func (nb *Numbering) Range(ranks []int) interval.Interval {
	n := nb.Number(ranks)
	end := new(big.Int).Add(n, nb.weights[len(ranks)])
	return interval.New(n, end)
}

// RootRange returns the range of the root node, [0, leafCount): the initial
// content of the coordinator's INTERVALS set (paper §4.3).
func (nb *Numbering) RootRange() interval.Interval {
	return interval.New(new(big.Int), nb.weights[0])
}

// PathOfNumber returns the rank path of the leaf with the given number, the
// inverse of Number restricted to leaves. It errors if the number is outside
// [0, leafCount). It is the building block used by tests to check that the
// numbering is a bijection on leaves.
func (nb *Numbering) PathOfNumber(n *big.Int) ([]int, error) {
	if n.Sign() < 0 || n.Cmp(nb.weights[0]) >= 0 {
		return nil, fmt.Errorf("core: number %s outside [0,%s)", n, nb.weights[0])
	}
	p := nb.shape.Depth()
	ranks := make([]int, p)
	rest := new(big.Int).Set(n)
	q := new(big.Int)
	for d := 0; d < p; d++ {
		// rank at path position d = rest / weight(depth d+1).
		q.QuoRem(rest, nb.weights[d+1], rest)
		ranks[d] = int(q.Int64())
	}
	return ranks, nil
}
