package core

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interval"
	"repro/internal/tree"
)

// TestFigure4FoldUnfold reproduces the paper's Figure 4 scenario: an
// interval unfolds into a minimal active list whose fold gives back exactly
// the interval.
func TestFigure4FoldUnfold(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 4})
	// [5, 19) inside a 24-leaf tree crosses several subtree boundaries.
	iv := interval.FromInt64(5, 19)
	nodes := Unfold(nb, iv)
	if len(nodes) == 0 {
		t.Fatal("unfold returned no nodes")
	}
	back, err := FoldStrict(nb, nodes)
	if err != nil {
		t.Fatalf("fold strict: %v", err)
	}
	if !back.Equal(iv) {
		t.Fatalf("fold(unfold([5,19))) = %v", back)
	}
}

// TestUnfoldMinimality checks eq. (11): every unfolded node's range is
// inside the interval while its father's is not, which makes the list
// minimal and unique.
func TestUnfoldMinimality(t *testing.T) {
	shapes := []tree.Shape{
		tree.Permutation{N: 5},
		tree.Binary{P: 6},
		tree.Uniform{P: 4, K: 3},
	}
	rng := rand.New(rand.NewSource(11))
	for _, s := range shapes {
		nb := NewNumbering(s)
		total := nb.LeafCount().Int64()
		for trial := 0; trial < 100; trial++ {
			a := rng.Int63n(total)
			b := a + rng.Int63n(total-a) + 1
			iv := interval.FromInt64(a, b)
			for _, n := range Unfold(nb, iv) {
				if !iv.ContainsInterval(nb.Range(n.Ranks)) {
					t.Fatalf("%s: node %v range %v escapes %v", s.Name(), n, nb.Range(n.Ranks), iv)
				}
				if len(n.Ranks) > 0 {
					father := n.Ranks[:len(n.Ranks)-1]
					if iv.ContainsInterval(nb.Range(father)) {
						t.Fatalf("%s: father of %v is inside %v: list not minimal", s.Name(), n, iv)
					}
				} else if !iv.ContainsInterval(nb.RootRange()) {
					t.Fatalf("%s: root emitted but root range not inside %v", s.Name(), iv)
				}
			}
		}
	}
}

// TestUnfoldFoldRoundTrip is the central property of §3.4–3.5: for every
// interval inside the tree, fold(unfold(iv)) == iv, and the unfolded ranges
// tile iv exactly with no gaps or overlaps (checked by FoldStrict).
func TestUnfoldFoldRoundTrip(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 6})
	total := nb.LeafCount().Int64() // 720
	f := func(x, y uint16) bool {
		a := int64(x) % total
		b := int64(y) % total
		if a > b {
			a, b = b, a
		}
		b++ // non-empty
		iv := interval.FromInt64(a, b)
		nodes := Unfold(nb, iv)
		back, err := FoldStrict(nb, nodes)
		if err != nil {
			return false
		}
		return back.Equal(iv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestUnfoldCost checks the §3.5 cost guarantee: the number of emitted
// nodes is bounded by 2·P·K (at most one straddling node decomposed per
// boundary per depth, each contributing at most K-1 collected siblings).
func TestUnfoldCost(t *testing.T) {
	shape := tree.Permutation{N: 12}
	nb := NewNumbering(shape)
	total := nb.LeafCount()
	rng := rand.New(rand.NewSource(3))
	limit := 2 * shape.Depth() * shape.Branching(0)
	for trial := 0; trial < 50; trial++ {
		a := new(big.Int).Rand(rng, total)
		b := new(big.Int).Rand(rng, total)
		if a.Cmp(b) > 0 {
			a, b = b, a
		}
		b.Add(b, big.NewInt(1))
		nodes := Unfold(nb, interval.New(a, b))
		if len(nodes) > limit {
			t.Fatalf("unfold of [%s,%s) returned %d nodes > limit %d", a, b, len(nodes), limit)
		}
	}
}

// TestUnfoldWholeTree: unfolding the root range yields exactly the root.
func TestUnfoldWholeTree(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 5})
	nodes := Unfold(nb, nb.RootRange())
	if len(nodes) != 1 || len(nodes[0].Ranks) != 0 {
		t.Fatalf("unfold(root range) = %v, want the single root node", nodes)
	}
}

// TestUnfoldEmptyAndOutside: empty intervals and intervals outside the tree
// unfold to nothing.
func TestUnfoldEmptyAndOutside(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 4})
	cases := []interval.Interval{
		interval.FromInt64(5, 5),
		interval.FromInt64(7, 3),
		interval.FromInt64(24, 50),
		interval.FromInt64(-10, 0),
	}
	for _, iv := range cases {
		if nodes := Unfold(nb, iv); len(nodes) != 0 {
			t.Errorf("unfold(%v) = %v, want empty", iv, nodes)
		}
	}
}

// TestUnfoldClampsToTree: an interval overlapping the tree partially is
// clamped to the root range.
func TestUnfoldClampsToTree(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 4})
	nodes := Unfold(nb, interval.FromInt64(20, 100))
	back, err := FoldStrict(nb, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(interval.FromInt64(20, 24)) {
		t.Fatalf("fold(unfold([20,100))) = %v, want [20,24)", back)
	}
}

// TestFoldSingleNode: the fold of one node is its range (eq. 10 degenerate
// case).
func TestFoldSingleNode(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 4})
	n := NodeRef{Ranks: []int{2, 1}}
	iv, err := Fold(nb, []NodeRef{n})
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Equal(nb.Range(n.Ranks)) {
		t.Fatalf("fold({%v}) = %v, want %v", n, iv, nb.Range(n.Ranks))
	}
}

// TestFoldStrictDetectsGaps: a non-contiguous list is rejected.
func TestFoldStrictDetectsGaps(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 4})
	// Nodes <0> and <2> leave the subtree of <1> uncovered.
	list := []NodeRef{{Ranks: []int{0}}, {Ranks: []int{2}}}
	if _, err := FoldStrict(nb, list); err == nil {
		t.Fatal("gap not detected")
	}
	// Plain Fold still reports the hull — the over-approximation a real
	// DFS frontier with pruned holes produces.
	iv, err := Fold(nb, list)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Equal(interval.FromInt64(0, 18)) {
		t.Fatalf("fold hull = %v, want [0,18)", iv)
	}
}

// TestFoldEmptyList errors.
func TestFoldEmptyList(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 4})
	if _, err := Fold(nb, nil); err == nil {
		t.Fatal("fold of empty list accepted")
	}
}

// TestNodeRefString covers the diagnostic rendering.
func TestNodeRefString(t *testing.T) {
	if got := (NodeRef{}).String(); got != "<>" {
		t.Errorf("root String() = %q", got)
	}
	if got := (NodeRef{Ranks: []int{2, 0, 1}}).String(); got != "<2.0.1>" {
		t.Errorf("String() = %q", got)
	}
}
