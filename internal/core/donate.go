package core

import "repro/internal/interval"

// Donate carves off the right half of the explorer's remaining interval and
// returns it, restricting the explorer to the left half it is already
// walking. It returns the empty interval — and leaves the explorer
// untouched — when there is nothing worth giving (the explorer is done or
// its remainder holds fewer than two numbers).
//
// This is the work-movement primitive shared by every runtime that
// rebalances between live explorers: the p2p ring's steal-by-halving
// (victims donate to hungry peers) and the multicore worker's shard engine
// (idle shards donate from the richest sibling). Callers own the
// synchronization: an Explorer is single-threaded, so concurrent runtimes
// must hold the victim's lock across the call — the fold (Remaining), the
// halving and the Restrict must be one atomic step or the donated and kept
// parts could both be explored.
func Donate(e *Explorer) interval.Interval {
	if e.Done() {
		return interval.Interval{}
	}
	rem := e.Remaining()
	keep, give := interval.Halve(rem)
	if give.IsEmpty() {
		return interval.Interval{}
	}
	e.Restrict(keep)
	return give
}
