package core

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

// TestFigure1Weights reproduces the paper's Figure 1: the per-depth weights
// of a permutation tree. For P=4 the weight vector is 24, 6, 2, 1, 1.
func TestFigure1Weights(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 4})
	want := []int64{24, 6, 2, 1, 1}
	for d, w := range want {
		if nb.Weight(d).Int64() != w {
			t.Errorf("weight(depth %d) = %s, want %d", d, nb.Weight(d), w)
		}
	}
	if nb.LeafCount().Int64() != 24 {
		t.Errorf("leaf count = %s, want 24", nb.LeafCount())
	}
}

// TestBinaryWeights checks eq. (2): weight = 2^(P-depth).
func TestBinaryWeights(t *testing.T) {
	nb := NewNumbering(tree.Binary{P: 10})
	for d := 0; d <= 10; d++ {
		want := int64(1) << (10 - d)
		if nb.Weight(d).Int64() != want {
			t.Errorf("binary weight(depth %d) = %s, want %d", d, nb.Weight(d), want)
		}
	}
}

// TestFigure2Numbers reproduces the numbering of Figure 2 on a small
// permutation tree: leaf numbers enumerate 0..N!-1 in depth-first order and
// each internal node's number equals its leftmost leaf's.
func TestFigure2Numbers(t *testing.T) {
	shape := tree.Permutation{N: 3}
	nb := NewNumbering(shape)
	// Leaves in DFS order get consecutive numbers.
	wantLeaf := int64(0)
	var walk func(ranks []int)
	walk = func(ranks []int) {
		d := len(ranks)
		if d == shape.Depth() {
			if got := nb.Number(ranks).Int64(); got != wantLeaf {
				t.Fatalf("leaf %v number = %d, want %d", ranks, got, wantLeaf)
			}
			wantLeaf++
			return
		}
		// Internal node number equals the number of its first child.
		first := append(append([]int(nil), ranks...), 0)
		if nb.Number(ranks).Cmp(nb.Number(first)) != 0 {
			t.Fatalf("node %v number %s != first child number %s", ranks, nb.Number(ranks), nb.Number(first))
		}
		for r := 0; r < shape.Branching(d); r++ {
			walk(append(append([]int(nil), ranks...), r))
		}
	}
	walk(nil)
	if wantLeaf != 6 {
		t.Fatalf("visited %d leaves, want 6", wantLeaf)
	}
}

// TestFigure3Ranges reproduces Figure 3: the range of a node is the union
// of its children's ranges, children's ranges abut, and every range nests
// inside the father's.
func TestFigure3Ranges(t *testing.T) {
	shape := tree.Permutation{N: 4}
	nb := NewNumbering(shape)
	var walk func(ranks []int)
	walk = func(ranks []int) {
		d := len(ranks)
		if d == shape.Depth() {
			return
		}
		parent := nb.Range(ranks)
		prevEnd := parent.A()
		for r := 0; r < shape.Branching(d); r++ {
			child := append(append([]int(nil), ranks...), r)
			cr := nb.Range(child)
			if !parent.ContainsInterval(cr) {
				t.Fatalf("child %v range %v escapes parent %v range %v", child, cr, ranks, parent)
			}
			if cr.A().Cmp(prevEnd) != 0 {
				t.Fatalf("child %v range %v does not abut previous end %s", child, cr, prevEnd)
			}
			prevEnd = cr.B()
			walk(child)
		}
		if prevEnd.Cmp(parent.B()) != 0 {
			t.Fatalf("children of %v tile up to %s, parent ends at %s", ranks, prevEnd, parent.B())
		}
	}
	walk(nil)
}

// TestNumberBijection checks that PathOfNumber inverts Number on leaves for
// several shapes, including a shape large enough that numbers exceed int64.
func TestNumberBijection(t *testing.T) {
	shapes := []tree.Shape{
		tree.Permutation{N: 5},
		tree.Binary{P: 7},
		tree.Uniform{P: 4, K: 3},
		tree.Permutation{N: 30}, // 30! >> 2^64: exercises big paths
	}
	rng := rand.New(rand.NewSource(7))
	for _, s := range shapes {
		nb := NewNumbering(s)
		for trial := 0; trial < 200; trial++ {
			// Random leaf path.
			ranks := make([]int, s.Depth())
			for d := range ranks {
				ranks[d] = rng.Intn(s.Branching(d))
			}
			n := nb.Number(ranks)
			back, err := nb.PathOfNumber(n)
			if err != nil {
				t.Fatalf("%s: PathOfNumber(%s): %v", s.Name(), n, err)
			}
			for d := range ranks {
				if back[d] != ranks[d] {
					t.Fatalf("%s: path %v -> %s -> %v", s.Name(), ranks, n, back)
				}
			}
		}
	}
}

// TestNumberMonotonic property: for random leaf pairs, DFS order (lexicographic
// rank order) agrees with number order.
func TestNumberMonotonic(t *testing.T) {
	shape := tree.Permutation{N: 6}
	nb := NewNumbering(shape)
	gen := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		ranks := make([]int, shape.Depth())
		for d := range ranks {
			ranks[d] = rng.Intn(shape.Branching(d))
		}
		return ranks
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		cmpLex := 0
		for d := range a {
			if a[d] != b[d] {
				if a[d] < b[d] {
					cmpLex = -1
				} else {
					cmpLex = 1
				}
				break
			}
		}
		cmpNum := nb.Number(a).Cmp(nb.Number(b))
		return cmpLex == cmpNum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPathOfNumberRejectsOutside checks the domain guard.
func TestPathOfNumberRejectsOutside(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 4})
	if _, err := nb.PathOfNumber(big.NewInt(-1)); err == nil {
		t.Error("negative number accepted")
	}
	if _, err := nb.PathOfNumber(big.NewInt(24)); err == nil {
		t.Error("number == leaf count accepted")
	}
	if _, err := nb.PathOfNumber(big.NewInt(23)); err != nil {
		t.Errorf("last leaf rejected: %v", err)
	}
}

// TestRootRange checks INTERVALS initialization (§4.3): the root range is
// [0, leafCount).
func TestRootRange(t *testing.T) {
	nb := NewNumbering(tree.Permutation{N: 5})
	r := nb.RootRange()
	if r.A().Sign() != 0 || r.B().Int64() != 120 {
		t.Fatalf("root range = %v, want [0,120)", r)
	}
}
