package core

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bb"
	"repro/internal/interval"
	"repro/internal/tree"
)

// Tests of Explorer.Restrict invoked while the walk is deep in interior
// mode — the boundary re-derivation edge cases of DESIGN.md §1. In interior
// mode node numbers below the entry depth are deliberately stale; Restrict
// must materialize them (eq. 6 folds along the rank path), drop back to
// boundary mode, and re-derive interior status against the new bounds. A
// wrong re-derivation either loses leaves (numbers silently skipped) or
// leaks them (numbers explored twice after the matching donation).

// driveIntoInterior steps e until the walk is in interior mode with at
// least margin levels between the entry depth and the current depth, or
// fails the test. Small step slices keep the position mid-subtree.
func driveIntoInterior(t *testing.T, e *Explorer, margin int) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if e.interior >= 0 && e.depth >= e.interior+margin {
			return
		}
		if _, done := e.Step(1); done {
			t.Fatalf("explorer finished before reaching interior depth (interior=%d depth=%d)", e.interior, e.depth)
		}
	}
	t.Fatalf("never reached interior mode with margin %d", margin)
}

// TestRestrictDeepInteriorExactCoverage: on a uniform tree with a counting
// problem (nothing prunes), restrict the end mid-interior and explore the
// carved-off part independently: every leaf of the original interval must
// be visited exactly once across the two explorers — no loss, no overlap.
func TestRestrictDeepInteriorExactCoverage(t *testing.T) {
	shape := tree.Uniform{P: 7, K: 3} // 2187 leaves
	nb := NewNumbering(shape)
	total := nb.LeafCount().Int64()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		// The span must fit an aligned depth≥2 subtree strictly inside,
		// or interior mode never engages (every node then straddles a
		// boundary, which is the boundary-walk tests' territory).
		const minSpan = 64
		a := rng.Int63n(total - minSpan)
		b := a + minSpan + rng.Int63n(total-a-minSpan)
		iv := interval.FromInt64(a, b)

		count := &countingProblem{shape: shape, visited: make(map[int64]int)}
		e := NewExplorer(count, nb, iv, bb.Infinity)
		driveIntoInterior(t, e, 2)

		// Cut the remainder at a point that lands inside the current
		// interior subtree whenever possible: between the next number
		// and the interval end.
		rem := e.Remaining()
		if rem.IsEmpty() {
			t.Fatalf("trial %d: interior walk with empty remainder", trial)
		}
		span := new(big.Int).Sub(rem.B(), rem.A())
		cut := new(big.Int).Rand(rng, span)
		cut.Add(cut, rem.A())
		keep, donated := rem.SplitAt(cut)

		e.Restrict(keep)
		if e.interior != -1 {
			t.Fatalf("trial %d: Restrict left the walk in interior mode", trial)
		}
		e.Run(1 << 10)

		e2 := NewExplorer(count, nb, donated, bb.Infinity)
		e2.Run(1 << 10)

		for n := a; n < b; n++ {
			if got := count.visited[n]; got != 1 {
				t.Fatalf("trial %d: [%d,%d) cut at %s: leaf %d visited %d times", trial, a, b, cut, n, got)
			}
		}
		for n, c := range count.visited {
			if n < a || n >= b {
				t.Fatalf("trial %d: leaf %d outside [%d,%d) visited %d times", trial, n, a, b, c)
			}
		}
	}
}

// TestRestrictDeepInteriorAdvancesLo: the other boundary — a duplicated
// interval whose beginning was advanced by a faster sibling (§4.2). The
// walk is deep inside an interior subtree when lo jumps forward past it;
// already-visited leaves stay visited (no rewind) and the leaves before the
// new lo that were not yet visited must be skipped, never revisited.
func TestRestrictDeepInteriorAdvancesLo(t *testing.T) {
	shape := tree.Uniform{P: 7, K: 3}
	nb := NewNumbering(shape)
	total := nb.LeafCount().Int64()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		count := &countingProblem{shape: shape, visited: make(map[int64]int)}
		e := NewExplorer(count, nb, nb.RootRange(), bb.Infinity)
		driveIntoInterior(t, e, 2)

		visitedBefore := int64(len(count.visited))
		// Advance lo beyond the current position by a random stride.
		newLo := visitedBefore + 1 + rng.Int63n(total-visitedBefore-1)
		e.Restrict(interval.New(big.NewInt(newLo), nb.LeafCount()))
		e.Run(1 << 10)

		// Exactly the prefix visited before the restriction plus the
		// suffix [newLo, total) — and nothing in between — each once.
		for n := int64(0); n < total; n++ {
			want := 0
			if n < visitedBefore || n >= newLo {
				want = 1
			}
			if got := count.visited[n]; got != want {
				t.Fatalf("trial %d: lo %d->%d after %d leaves: leaf %d visited %d times, want %d",
					trial, visitedBefore, newLo, visitedBefore, n, got, want)
			}
		}
	}
}

// TestRestrictDeepInteriorToEmpty: restricting the interval to nothing
// while deep inside a subtree must finish the walk immediately and leave
// the explorer reusable via Reassign.
func TestRestrictDeepInteriorToEmpty(t *testing.T) {
	p := flowshopProblem(8, 5, 5)
	nb := NewNumbering(p.Shape())
	e := NewExplorer(p, nb, nb.RootRange(), bb.Infinity)
	driveIntoInterior(t, e, 2)

	rem := e.Remaining()
	e.Restrict(interval.New(rem.B(), rem.B()))
	if !e.Done() {
		// One step may be needed to notice the exhausted bounds.
		if _, done := e.Step(1); !done {
			t.Fatal("explorer kept walking after Restrict to empty")
		}
	}

	// The engine must be cleanly reusable afterwards.
	want, _ := bb.Solve(flowshopProblem(8, 5, 5), bb.Infinity)
	e.Reassign(nb.RootRange())
	sol, _ := e.Run(1 << 12)
	if sol.Cost != want.Cost {
		t.Fatalf("reused explorer found %d, want %d", sol.Cost, want.Cost)
	}
}

// TestRestrictInteriorFlowshopOptimality: the domain-level end-to-end
// version — repeatedly restrict a flowshop exploration mid-interior, hand
// the carved parts to fresh explorers, and require the union to find the
// sequential optimum (the incumbent is NOT shared between parts, so any
// lost leaf shows up as a wrong cost on some trial).
func TestRestrictInteriorFlowshopOptimality(t *testing.T) {
	p := flowshopProblem(9, 5, 11)
	nb := NewNumbering(p.Shape())
	want, _ := bb.Solve(flowshopProblem(9, 5, 11), bb.Infinity)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		best := bb.Infinity
		queue := []interval.Interval{nb.RootRange()}
		for len(queue) > 0 {
			iv := queue[0]
			queue = queue[1:]
			e := NewExplorer(p, nb, iv, bb.Infinity)
			for !e.Done() {
				e.Step(int64(1 + rng.Intn(64)))
				if e.interior >= 0 && e.depth > e.interior && rng.Intn(2) == 0 {
					rem := e.Remaining()
					if rem.IsEmpty() {
						continue
					}
					span := new(big.Int).Sub(rem.B(), rem.A())
					if span.Sign() <= 0 {
						continue
					}
					cut := new(big.Int).Rand(rng, span)
					cut.Add(cut, rem.A())
					keep, donated := rem.SplitAt(cut)
					e.Restrict(keep)
					if !donated.IsEmpty() {
						queue = append(queue, donated)
					}
				}
			}
			if b := e.Best(); b.Cost < best {
				best = b.Cost
			}
		}
		if best != want.Cost {
			t.Fatalf("trial %d: union of interior-restricted parts found %d, want %d", trial, best, want.Cost)
		}
	}
}
