package core

import (
	"fmt"
	"math/big"

	"repro/internal/interval"
	"repro/internal/tree"
)

// NodeRef identifies a tree node by its rank path from the root. The root is
// the empty path. NodeRef is the unit of the unfolded representation: a list
// of active nodes (paper §3, "the list of active nodes is used for
// exploration").
type NodeRef struct {
	// Ranks is the rank of each node of the path among its siblings,
	// root child first (paper §3.2: "the rank of the first generated node
	// is 0, the rank of the second generated node is 1, and so on").
	Ranks []int
}

// Depth returns the node's depth, i.e. the length of its path.
func (n NodeRef) Depth() int { return len(n.Ranks) }

// Clone returns a deep copy of the reference.
func (n NodeRef) Clone() NodeRef {
	return NodeRef{Ranks: append([]int(nil), n.Ranks...)}
}

// String renders the rank path, e.g. "<2.0.1>"; the root is "<>".
func (n NodeRef) String() string {
	s := "<"
	for i, r := range n.Ranks {
		if i > 0 {
			s += "."
		}
		s += fmt.Sprint(r)
	}
	return s + ">"
}

// Fold implements the fold operator (eq. 10): given a depth-first active
// list N1..Nk ordered by exploration order (hence by ascending number,
// eq. 9), the interval of all numbers explorable from it is
// [number(N1), number(Nk)+weight(Nk)). Only the first and the last node are
// inspected — that is the whole point of the coding: the interval is O(1) in
// the size of the list.
//
// Fold errors on an empty list (the fold of no work is the empty interval,
// but callers should represent that state explicitly) and on malformed
// paths.
func Fold(nb *Numbering, active []NodeRef) (interval.Interval, error) {
	if len(active) == 0 {
		return interval.Interval{}, fmt.Errorf("core: fold of empty active list")
	}
	first, last := active[0], active[len(active)-1]
	if err := tree.Validate(nb.shape, first.Ranks); err != nil {
		return interval.Interval{}, err
	}
	if err := tree.Validate(nb.shape, last.Ranks); err != nil {
		return interval.Interval{}, err
	}
	a := nb.Number(first.Ranks)
	b := nb.Number(last.Ranks)
	b.Add(b, nb.weights[len(last.Ranks)])
	return interval.New(a, b), nil
}

// FoldStrict is Fold plus a verification of the depth-first contiguity
// condition (eq. 9): the range of each node must end exactly where the range
// of its successor begins. A violated condition means the list is not a
// depth-first frontier and its fold would claim numbers the list does not
// cover; FoldStrict reports which pair is at fault.
func FoldStrict(nb *Numbering, active []NodeRef) (interval.Interval, error) {
	iv, err := Fold(nb, active)
	if err != nil {
		return iv, err
	}
	prevEnd := new(big.Int)
	for i, n := range active {
		if err := tree.Validate(nb.shape, n.Ranks); err != nil {
			return interval.Interval{}, err
		}
		num := nb.Number(n.Ranks)
		if i > 0 && prevEnd.Cmp(num) != 0 {
			return interval.Interval{}, fmt.Errorf(
				"core: active list not contiguous at position %d: previous range ends at %s, %v begins at %s",
				i, prevEnd, n, num)
		}
		prevEnd.Add(num, nb.weights[len(n.Ranks)])
	}
	return iv, nil
}

// Unfold implements the unfold operator (eqs. 11–13): it returns the unique
// minimal list of nodes whose ranges tile [A, B) exactly, in ascending
// number order. A node is emitted when its range is included in the interval
// while its father's is not (eq. 11); nodes whose range is disjoint from the
// interval are eliminated; nodes whose range straddles a boundary are
// decomposed (eq. 12). At most one node per boundary per depth is
// decomposed, so the cost is bounded by 2·P·K range comparisons for a tree
// of depth P and branching K — "this guarantees the low cost of the unfold
// operator" (§3.5).
//
// Unfold of an empty or out-of-tree interval returns an empty list.
func Unfold(nb *Numbering, iv interval.Interval) []NodeRef {
	target := iv.Intersect(nb.RootRange())
	if target.IsEmpty() {
		return nil
	}
	var out []NodeRef
	ranks := make([]int, 0, nb.Depth())
	var walk func(num *big.Int, depth int)
	end := new(big.Int)
	a, b := target.A(), target.B()
	walk = func(num *big.Int, depth int) {
		w := nb.weights[depth]
		end.Add(num, w)
		// Elimination rule (eq. 12), case "range and [A,B) disjoint".
		if end.Cmp(a) <= 0 || num.Cmp(b) >= 0 {
			return
		}
		// Elimination rule, case "range ⊆ [A,B)": collect (eq. 13).
		if num.Cmp(a) >= 0 && end.Cmp(b) <= 0 {
			out = append(out, NodeRef{Ranks: append([]int(nil), ranks...)})
			return
		}
		// Partial overlap: decompose (branching operator of the
		// interval-only B&B of §3.5).
		if depth == nb.Depth() {
			// A leaf range is a single number and can never
			// partially overlap a non-empty interval.
			panic("core: unfold reached a straddling leaf; numbering invariant broken")
		}
		k := nb.shape.Branching(depth)
		childNum := new(big.Int).Set(num)
		childW := nb.weights[depth+1]
		for r := 0; r < k; r++ {
			ranks = append(ranks, r)
			walk(childNum, depth+1)
			ranks = ranks[:len(ranks)-1]
			childNum.Add(childNum, childW)
			// Stop early once children start past the interval;
			// all later siblings are disjoint too.
			if childNum.Cmp(b) >= 0 {
				break
			}
		}
	}
	walk(new(big.Int), 0)
	return out
}
