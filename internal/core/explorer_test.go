package core

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bb"
	"repro/internal/flowshop"
	"repro/internal/interval"
	"repro/internal/knapsack"
	"repro/internal/tree"
	"repro/internal/tsp"
)

func flowshopProblem(jobs, machines int, seed int64) *flowshop.Problem {
	ins := flowshop.Taillard(jobs, machines, seed)
	return flowshop.NewProblem(ins, flowshop.BoundOneMachine, PairsUnusedOK())
}

// PairsUnusedOK returns an arbitrary pair strategy; the one-machine bound
// ignores it.
func PairsUnusedOK() flowshop.PairStrategy { return flowshop.PairsAll }

// TestExplorerMatchesSequential: exploring the whole root interval must find
// the same optimum as the plain sequential B&B and as brute force, on all
// three problem domains.
func TestExplorerMatchesSequential(t *testing.T) {
	problems := map[string]bb.Problem{
		"flowshop": flowshopProblem(7, 4, 123),
		"tsp":      tsp.NewProblem(tsp.RandomEuclidean(8, 100, 5)),
		"knapsack": knapsack.NewProblem(knapsack.Random(10, 9)),
	}
	for name, p := range problems {
		t.Run(name, func(t *testing.T) {
			brute, _ := bb.Enumerate(p)
			seq, _ := bb.Solve(p, bb.Infinity)
			if seq.Cost != brute.Cost {
				t.Fatalf("sequential B&B cost %d != brute force %d", seq.Cost, brute.Cost)
			}
			nb := NewNumbering(p.Shape())
			e := NewExplorer(p, nb, nb.RootRange(), bb.Infinity)
			sol, _ := e.Run(1 << 12)
			if sol.Cost != brute.Cost {
				t.Fatalf("explorer cost %d != brute force %d", sol.Cost, brute.Cost)
			}
			if !sol.Valid() {
				t.Fatal("explorer returned invalid solution")
			}
		})
	}
}

// TestExplorerIntervalPartition: splitting the root range into k arbitrary
// parts and exploring them independently must cover the tree — the best of
// the parts equals the global optimum, whatever the split points.
func TestExplorerIntervalPartition(t *testing.T) {
	p := flowshopProblem(7, 5, 77)
	nb := NewNumbering(p.Shape())
	want, _ := bb.Solve(p, bb.Infinity)
	total := nb.LeafCount().Int64()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(5)
		cuts := make([]int64, 0, k+1)
		cuts = append(cuts, 0)
		for i := 0; i < k-1; i++ {
			cuts = append(cuts, rng.Int63n(total))
		}
		cuts = append(cuts, total)
		sortInt64(cuts)
		best := bb.Infinity
		for i := 0; i+1 < len(cuts); i++ {
			iv := interval.FromInt64(cuts[i], cuts[i+1])
			e := NewExplorer(p, nb, iv, bb.Infinity)
			sol, _ := e.Run(1 << 12)
			if sol.Cost < best {
				best = sol.Cost
			}
		}
		if best != want.Cost {
			t.Fatalf("trial %d cuts %v: best over parts = %d, want %d", trial, cuts, best, want.Cost)
		}
	}
}

func sortInt64(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestExplorerLeafCoverage: with bounding disabled (infinite upper bound
// never prunes only when bounds can exceed it... so use a problem with a
// trivial bound) every leaf number in the interval is visited exactly once.
// We use the Uniform shape with a counting problem to check exact leaf
// coverage of arbitrary intervals.
func TestExplorerLeafCoverage(t *testing.T) {
	shape := tree.Uniform{P: 5, K: 3} // 243 leaves
	nb := NewNumbering(shape)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		a := rng.Int63n(243)
		b := a + rng.Int63n(243-a) + 1
		cp := &countingProblem{shape: shape, visited: make(map[int64]int)}
		e := NewExplorer(cp, nb, interval.FromInt64(a, b), bb.Infinity)
		e.Run(64)
		if int64(len(cp.visited)) != b-a {
			t.Fatalf("[%d,%d): visited %d distinct leaves, want %d", a, b, len(cp.visited), b-a)
		}
		for n, times := range cp.visited {
			if n < a || n >= b {
				t.Fatalf("[%d,%d): visited leaf %d outside interval", a, b, n)
			}
			if times != 1 {
				t.Fatalf("[%d,%d): leaf %d visited %d times", a, b, n, times)
			}
		}
	}
}

// countingProblem records the numbers of the leaves it reaches; its bound
// never prunes. Leaf numbers are reconstructed from the path.
type countingProblem struct {
	shape   tree.Uniform
	path    []int
	visited map[int64]int
}

func (c *countingProblem) Shape() tree.Shape { return c.shape }
func (c *countingProblem) Reset()            { c.path = c.path[:0] }
func (c *countingProblem) Descend(rank int)  { c.path = append(c.path, rank) }
func (c *countingProblem) Ascend()           { c.path = c.path[:len(c.path)-1] }
func (c *countingProblem) Bound(int64) int64 { return 0 }
func (c *countingProblem) Cost() int64 {
	var n int64
	for _, r := range c.path {
		n = n*int64(c.shape.K) + int64(r)
	}
	c.visited[n]++
	return 1 // constant cost: nothing prunes, everything is visited
}

// TestExplorerStepBudget: tiny step budgets must reach the same result as
// one big run, and Step must report done exactly once at the end.
func TestExplorerStepBudget(t *testing.T) {
	p := flowshopProblem(6, 4, 3)
	nb := NewNumbering(p.Shape())
	ref := NewExplorer(p, nb, nb.RootRange(), bb.Infinity)
	refSol, refStats := ref.Run(1 << 20)

	e := NewExplorer(p, nb, nb.RootRange(), bb.Infinity)
	var total int64
	for {
		n, done := e.Step(7)
		total += n
		if done {
			break
		}
	}
	if got := e.Best(); got.Cost != refSol.Cost {
		t.Fatalf("stepped cost %d != reference %d", got.Cost, refSol.Cost)
	}
	if total != refStats.Explored {
		t.Fatalf("stepped explored %d != reference %d", total, refStats.Explored)
	}
	if n, done := e.Step(100); n != 0 || !done {
		t.Fatalf("Step after done = (%d,%v), want (0,true)", n, done)
	}
}

// TestExplorerRemainingShrinks: the folded Remaining interval starts at the
// assigned beginning, only moves forward, and ends empty.
func TestExplorerRemainingShrinks(t *testing.T) {
	p := flowshopProblem(7, 4, 55)
	nb := NewNumbering(p.Shape())
	iv := nb.RootRange()
	e := NewExplorer(p, nb, iv, bb.Infinity)
	prev := e.Remaining()
	if prev.A().Sign() != 0 {
		t.Fatalf("initial remaining %v does not start at 0", prev)
	}
	for {
		_, done := e.Step(50)
		cur := e.Remaining()
		if cur.A().Cmp(prev.A()) < 0 {
			t.Fatalf("remaining beginning moved backwards: %v after %v", cur, prev)
		}
		if cur.B().Cmp(iv.B()) != 0 && !cur.IsEmpty() {
			t.Fatalf("remaining end drifted: %v", cur)
		}
		prev = cur
		if done {
			break
		}
	}
	if !e.Remaining().IsEmpty() {
		t.Fatalf("remaining after done = %v, want empty", e.Remaining())
	}
}

// TestExplorerRestrictEnd: shrinking the end mid-run (the load-balancing
// intersection, §4.2) must leave the union of both halves' work equal to
// the whole: worker A explores [0,C) after restriction, worker B explores
// [C,total), and together they find the global optimum.
func TestExplorerRestrictEnd(t *testing.T) {
	p := flowshopProblem(7, 5, 91)
	nb := NewNumbering(p.Shape())
	want, _ := bb.Solve(p, bb.Infinity)
	total := nb.LeafCount()

	a := NewExplorer(p, nb, nb.RootRange(), bb.Infinity)
	// Explore a little, then donate the right half of what remains.
	a.Step(100)
	rem := a.Remaining()
	mid := new(big.Int).Add(rem.A(), rem.B())
	mid.Rsh(mid, 1)
	holder, donated := rem.SplitAt(mid)
	a.Restrict(holder)
	aSol, _ := a.Run(1 << 12)

	b := NewExplorer(p, nb, donated, bb.Infinity)
	bSol, _ := b.Run(1 << 12)

	best := aSol.Cost
	if bSol.Cost < best {
		best = bSol.Cost
	}
	if best != want.Cost {
		t.Fatalf("A(%v)+B(%v) best = %d, want %d (total %s)", holder, donated, best, want.Cost, total)
	}
}

// TestExplorerRestrictBeginning: advancing the beginning (duplicated
// interval partly explored elsewhere, §4.1) skips the overlap.
func TestExplorerRestrictBeginning(t *testing.T) {
	shape := tree.Uniform{P: 4, K: 3} // 81 leaves
	nb := NewNumbering(shape)
	cp := &countingProblem{shape: shape, visited: make(map[int64]int)}
	e := NewExplorer(cp, nb, interval.FromInt64(0, 81), bb.Infinity)
	e.Restrict(interval.FromInt64(30, 81))
	e.Run(16)
	if len(cp.visited) != 51 {
		t.Fatalf("visited %d leaves, want 51", len(cp.visited))
	}
	for n := range cp.visited {
		if n < 30 {
			t.Fatalf("visited leaf %d below restricted beginning", n)
		}
	}
}

// TestExplorerAdoptBest: a shared incumbent prunes exactly like a locally
// found one — priming with the known optimum still proves optimality and
// explores no more nodes than the unprimed run.
func TestExplorerAdoptBest(t *testing.T) {
	p := flowshopProblem(8, 4, 19)
	nb := NewNumbering(p.Shape())
	opt, statsCold := bb.Solve(p, bb.Infinity)

	e := NewExplorer(p, nb, nb.RootRange(), bb.Infinity)
	e.AdoptBest(opt.Cost)
	sol, statsPrimed := e.Run(1 << 14)
	if sol.Valid() && sol.Cost != opt.Cost {
		t.Fatalf("primed run found %d, optimum is %d", sol.Cost, opt.Cost)
	}
	if statsPrimed.Explored > statsCold.Explored {
		t.Fatalf("primed run explored %d > cold run %d", statsPrimed.Explored, statsCold.Explored)
	}
	// Adopting a worse bound must not overwrite a better incumbent.
	e.AdoptBest(opt.Cost + 100)
	if e.Best().Cost != minInt64(sol.Cost, opt.Cost) {
		t.Fatalf("AdoptBest with worse cost changed incumbent to %d", e.Best().Cost)
	}
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestExplorerOnImprove: the improvement hook fires with strictly
// decreasing costs and the last one equals the final best.
func TestExplorerOnImprove(t *testing.T) {
	p := flowshopProblem(7, 4, 7)
	nb := NewNumbering(p.Shape())
	e := NewExplorer(p, nb, nb.RootRange(), bb.Infinity)
	var seen []int64
	e.OnImprove = func(s bb.Solution) {
		seen = append(seen, s.Cost)
	}
	sol, stats := e.Run(1 << 12)
	if int64(len(seen)) != stats.Improved {
		t.Fatalf("hook fired %d times, stats say %d", len(seen), stats.Improved)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] >= seen[i-1] {
			t.Fatalf("improvements not strictly decreasing: %v", seen)
		}
	}
	if len(seen) > 0 && seen[len(seen)-1] != sol.Cost {
		t.Fatalf("last improvement %d != final best %d", seen[len(seen)-1], sol.Cost)
	}
}

// TestExplorerReassign: an explorer reused across work units keeps its
// incumbent and accumulates statistics.
func TestExplorerReassign(t *testing.T) {
	p := flowshopProblem(6, 4, 31)
	nb := NewNumbering(p.Shape())
	want, _ := bb.Solve(p, bb.Infinity)
	total := nb.LeafCount().Int64()

	e := NewExplorer(p, nb, interval.FromInt64(0, total/3), bb.Infinity)
	e.Run(1 << 12)
	e.Reassign(interval.FromInt64(total/3, 2*total/3))
	e.Run(1 << 12)
	e.Reassign(interval.FromInt64(2*total/3, total))
	sol, _ := e.Run(1 << 12)
	if sol.Cost != want.Cost {
		t.Fatalf("reassigned explorer best %d, want %d", sol.Cost, want.Cost)
	}
}

// TestExplorerEmptyInterval: an empty assignment is done immediately.
func TestExplorerEmptyInterval(t *testing.T) {
	p := flowshopProblem(5, 3, 1)
	nb := NewNumbering(p.Shape())
	e := NewExplorer(p, nb, interval.FromInt64(10, 10), bb.Infinity)
	if !e.Done() {
		t.Fatal("explorer over empty interval not done")
	}
	if n, done := e.Step(10); n != 0 || !done {
		t.Fatalf("Step = (%d,%v), want (0,true)", n, done)
	}
}
