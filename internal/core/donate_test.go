package core

import (
	"math/big"
	"testing"

	"repro/internal/bb"
	"repro/internal/interval"
	"repro/internal/knapsack"
)

// TestDonateTilesRemaining: mid-exploration donations carve the victim's
// remainder exactly in two — donated + kept tile the old remainder with no
// overlap — and exploring the two parts with separate engines still proves
// the sequential optimum: work moves, it is never lost or duplicated.
func TestDonateTilesRemaining(t *testing.T) {
	ins := knapsack.Random(16, 9)
	factory := func() bb.Problem { return knapsack.NewProblem(ins) }
	want, _ := bb.Solve(factory(), bb.Infinity)
	nb := NewNumbering(factory().Shape())

	victim := NewExplorer(factory(), nb, nb.RootRange(), bb.Infinity)
	victim.Step(50) // get properly mid-walk (the instance solves in ~62 nodes)
	before := victim.Remaining()
	give := Donate(victim)
	if give.IsEmpty() {
		t.Fatal("victim with a large remainder donated nothing")
	}
	after := victim.Remaining()
	if after.Overlaps(give) {
		t.Fatalf("donated %v overlaps kept remainder %v", give, after)
	}
	sum := new(big.Int).Add(after.Len(), give.Len())
	if sum.Cmp(before.Len()) != 0 {
		t.Fatalf("donation lost measure: %v -> %v + %v", before, after, give)
	}
	thief := NewExplorer(factory(), nb, give, bb.Infinity)
	vSol, _ := victim.Run(1 << 12)
	tSol, _ := thief.Run(1 << 12)
	best := vSol
	if tSol.Cost < best.Cost {
		best = tSol
	}
	if best.Cost != want.Cost {
		t.Fatalf("victim+thief best %d != sequential %d", best.Cost, want.Cost)
	}
}

// TestDonateAbsorbing: a finished explorer and one with a sub-2 remainder
// both refuse to donate, and the refusal leaves them untouched.
func TestDonateAbsorbing(t *testing.T) {
	ins := knapsack.Random(10, 4)
	factory := func() bb.Problem { return knapsack.NewProblem(ins) }
	nb := NewNumbering(factory().Shape())

	done := NewExplorer(factory(), nb, nb.RootRange(), bb.Infinity)
	done.Run(1 << 12)
	if give := Donate(done); !give.IsEmpty() {
		t.Fatalf("finished explorer donated %v", give)
	}

	root := nb.RootRange()
	one := NewExplorer(factory(), nb, root, bb.Infinity)
	// Restrict to a single leaf: too short to share.
	lo := root.A()
	hi := new(big.Int).Add(lo, big.NewInt(1))
	one.Reassign(interval.New(lo, hi))
	before := one.Remaining()
	if give := Donate(one); !give.IsEmpty() {
		t.Fatalf("one-leaf explorer donated %v", give)
	}
	if !one.Remaining().Equal(before) {
		t.Fatal("refused donation still changed the remainder")
	}
}
