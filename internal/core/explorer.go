package core

import (
	"math/big"

	"repro/internal/bb"
	"repro/internal/interval"
)

// Explorer is the interval-driven depth-first Branch and Bound engine: the
// B&B process of the paper's farmer–worker architecture (§4). It explores
// exactly the leaf numbers of an assigned interval [A, B), maintains the
// local best solution, and can fold its remaining work back into an interval
// at any moment for communication and checkpointing (§3: "the interval is
// used for communications and check-pointing, while the list of active nodes
// is used for exploration").
//
// The walk runs in two modes (DESIGN.md §1). In boundary mode — while the
// current subtree straddles an end of [A, B) — each child's number and range
// are computed incrementally (number(child) = number(parent) + rank·weight,
// eq. 6) on reused big.Int buffers and compared against the bounds. The
// moment a child's whole range is known to lie inside the interval, the walk
// switches to interior mode: every node of that subtree belongs to this
// explorer by construction, so the descent is a pure machine-integer cursor
// DFS — identical to the sequential engine in internal/bb — performing zero
// big.Int work and zero allocations until it ascends back to the depth where
// it entered. Node numbers below the entry depth are not maintained; they
// are reconstructed from the rank path on demand (Remaining, Restrict),
// which happens once per checkpoint rather than once per node. Since a DFS
// spends almost all of its time deep inside the interval, the per-node cost
// of the interval coding drops to that of a plain B&B.
//
// An Explorer is not safe for concurrent use; workers own one each and
// serialize external updates (interval restriction, incumbent sharing)
// through their message loop.
type Explorer struct {
	p  bb.Problem
	nb *Numbering

	lo, hi *big.Int // assigned interval [lo, hi); owned by the explorer

	// Depth-first walk state. cursor[d] is the rank of the next child to
	// try at depth d; the current path is cursor[d]-1 for d < depth.
	cursor []int
	branch []int // cached branching factor per depth (one slice load per node)
	depth  int
	num    []*big.Int // num[d] = number of the current path node at depth d
	path   []int      // rank path of the current position (path[d] valid for d < depth)

	// interior is the depth at which the walk entered a subtree fully
	// contained in [lo, hi), or -1 while the walk straddles a boundary.
	// While depth >= interior the hot loop does no big.Int work, and
	// num[d] is only valid for d <= interior (deeper numbers are folded
	// from the rank path on demand).
	interior int

	childNum *big.Int // scratch: number of the child being examined
	childEnd *big.Int // scratch: end of the child's range
	nextNum  *big.Int // scratch: result buffer of nextNumber
	tmp      *big.Int // scratch: rank·weight terms in lazy materialization

	best  bb.Solution
	stats bb.Stats
	done  bool

	// OnImprove, when non-nil, is invoked synchronously each time the
	// local best solution improves — the hook behind the paper's rule (2)
	// of solution sharing: "immediately informs the coordinator of any
	// solution which improves its local solution" (§4.4). The callback
	// receives a private copy of the solution.
	OnImprove func(bb.Solution)
}

// NewExplorer builds an explorer for the problem over the given interval,
// primed with the initial incumbent cost initialUpper (bb.Infinity when no
// upper bound is known). The interval is clamped to the tree's root range.
func NewExplorer(p bb.Problem, nb *Numbering, iv interval.Interval, initialUpper int64) *Explorer {
	e := &Explorer{
		p:        p,
		nb:       nb,
		cursor:   make([]int, nb.Depth()+1),
		branch:   make([]int, nb.Depth()+1),
		num:      make([]*big.Int, nb.Depth()+1),
		path:     make([]int, nb.Depth()+1),
		interior: -1,
		childNum: new(big.Int),
		childEnd: new(big.Int),
		nextNum:  new(big.Int),
		tmp:      new(big.Int),
		best:     bb.Solution{Cost: initialUpper},
	}
	for d := range e.num {
		e.num[d] = new(big.Int)
	}
	// branch has one extra entry (the leaf depth, zero) so the walk can
	// index it at any current depth without a bound check.
	copy(e.branch, bb.Branchings(nb.shape))
	e.lo, e.hi = clampAssigned(iv, nb)
	e.done = e.lo.Cmp(e.hi) >= 0
	p.Reset()
	return e
}

// clampAssigned restricts an assigned interval to the tree's root range.
// An empty interval — including the zero value, whose nil bounds would
// otherwise read as "no constraint" under the eq. 14 convention and clamp
// to the whole tree — assigns nothing: an idle explorer owns zero leaves,
// which is what the p2p peers and the worker's dropped-interval path rely
// on.
func clampAssigned(iv interval.Interval, nb *Numbering) (lo, hi *big.Int) {
	if iv.IsEmpty() {
		z := new(big.Int)
		return z, new(big.Int)
	}
	clamped := iv.Intersect(nb.RootRange())
	return clamped.A(), clamped.B()
}

// Numbering returns the numbering the explorer navigates with.
func (e *Explorer) Numbering() *Numbering { return e.nb }

// Done reports whether the assigned interval is fully explored.
func (e *Explorer) Done() bool { return e.done }

// Best returns a copy of the local best solution found or adopted so far.
func (e *Explorer) Best() bb.Solution { return e.best.Clone() }

// Stats returns a snapshot of the exploration counters.
func (e *Explorer) Stats() bb.Stats { return e.stats }

// AdoptBest lowers the incumbent cost to the given externally discovered
// value if it improves on the local one. The path is unknown to this
// process, so only the cost is kept — enough for the bounding operator.
// This is rule (3) of solution sharing: "regularly reads SOLUTION to update
// its local optimal solution" (§4.4).
func (e *Explorer) AdoptBest(cost int64) {
	if cost < e.best.Cost {
		e.best = bb.Solution{Cost: cost}
	}
}

// Restrict intersects the assigned interval with the coordinator's copy
// (eq. 14). Shrinking the end is the normal effect of load balancing (the
// holder "is informed to limit its exploration to [A,C) instead of [A,B)",
// §4.2); advancing the beginning happens when a duplicated interval was
// partly explored by another process. Both take effect lazily: the walk
// skips numbers that fall outside on its way. Restrict mutates the
// explorer's own bounds in place through the interval's borrow accessors,
// so steady-state coordination rounds allocate nothing here.
func (e *Explorer) Restrict(iv interval.Interval) {
	changed := false
	if iv.CmpA(e.lo) > 0 {
		iv.AInto(e.lo)
		changed = true
	}
	if iv.CmpB(e.hi) < 0 {
		iv.BInto(e.hi)
		changed = true
	}
	if !changed {
		// The steady-state checkpoint reply: the coordinator's copy
		// equals ours, nothing to re-check — in particular the interior
		// fast loop keeps running.
		return
	}
	if e.lo.Cmp(e.hi) >= 0 {
		e.done = true
	}
	// A subtree that was interior to the old interval may straddle the
	// new, smaller one: materialize the lazily skipped numbers along the
	// current path and fall back to boundary mode, which re-checks every
	// child against the updated bounds as the walk proceeds.
	e.materializeNums()
}

// materializeNums computes num[d] for the path depths below the interior
// entry point (which the fast loop deliberately leaves stale) and leaves
// interior mode. O(depth) big.Int work; called on the rare external events,
// never per node.
func (e *Explorer) materializeNums() {
	if e.interior < 0 {
		return
	}
	for d := e.interior; d < e.depth; d++ {
		// number(child) = number(parent) + rank·weight(child) (eq. 6).
		e.tmp.SetInt64(int64(e.path[d]))
		e.tmp.Mul(e.tmp, e.nb.weights[d+1])
		e.num[d+1].Add(e.num[d], e.tmp)
	}
	e.interior = -1
}

// nextNumber returns the number of the next node the walk will visit (into
// the reused nextNum buffer), or nil if the walk is exhausted. The next node
// is at the deepest level that still has untried children (remaining
// children of deeper levels come first in depth-first order and carry the
// smallest numbers).
func (e *Explorer) nextNumber() *big.Int {
	if e.done {
		return nil
	}
	for d := e.depth; d >= 0; d-- {
		if e.cursor[d] >= e.branch[d] {
			continue
		}
		n := e.nextNum
		// Fold the number of the current path node at depth d. num[] is
		// authoritative down to the interior entry depth; below it the
		// fast loop maintains only the rank path, so the remaining terms
		// of eq. 6 are summed here, once per checkpoint.
		base := d
		if e.interior >= 0 && base > e.interior {
			base = e.interior
		}
		n.Set(e.num[base])
		for k := base; k < d; k++ {
			e.tmp.SetInt64(int64(e.path[k]))
			e.tmp.Mul(e.tmp, e.nb.weights[k+1])
			n.Add(n, e.tmp)
		}
		e.tmp.SetInt64(int64(e.cursor[d]))
		e.tmp.Mul(e.tmp, e.nb.weights[d+1])
		n.Add(n, e.tmp)
		return n
	}
	return nil
}

// Remaining folds the not-yet-explored part of the assigned interval
// (eq. 10 applied to the live frontier). It is what the worker sends to the
// coordinator on every checkpoint/update (§4.1). The result is empty when
// exploration is finished.
func (e *Explorer) Remaining() interval.Interval {
	n := e.nextNumber()
	if n == nil {
		return interval.New(e.hi, e.hi)
	}
	if n.Cmp(e.lo) < 0 {
		n.Set(e.lo)
	}
	return interval.New(n, e.hi)
}

// Step explores up to budget nodes and returns how many were actually
// visited and whether the interval is now fully explored. A zero or negative
// budget visits nothing. Step is the single entry point used by both the
// goroutine runtime and the discrete-event grid simulator, so simulated
// statistics come from real exploration.
func (e *Explorer) Step(budget int64) (explored int64, done bool) {
	if e.done {
		return 0, true
	}
	p := e.p
	depthMax := e.nb.Depth()
	for explored < budget {
		if e.interior >= 0 {
			// Interior mode: the subtree rooted at depth e.interior lies
			// entirely inside [lo, hi), so ownership is settled for every
			// node below — pure int-cursor DFS, no big.Int in sight.
			cutoff := e.best.Cost
			for explored < budget {
				d := e.depth
				if e.cursor[d] >= e.branch[d] {
					// Level exhausted: backtrack.
					e.cursor[d] = 0
					e.depth--
					p.Ascend()
					if e.depth < e.interior {
						e.interior = -1
						break
					}
					continue
				}
				r := e.cursor[d]
				e.cursor[d]++
				explored++
				e.stats.Explored++
				e.path[d] = r
				p.Descend(r)
				if d+1 == depthMax {
					e.stats.Leaves++
					if c := p.Cost(); c < cutoff {
						e.improve(c, d+1)
						cutoff = e.best.Cost
					}
					p.Ascend()
					continue
				}
				if b := p.Bound(cutoff); b >= cutoff {
					// The elimination operator (see boundary mode below
					// for why pruning stays valid across processes).
					e.stats.Pruned++
					p.Ascend()
					continue
				}
				e.depth++
			}
			continue
		}
		// Boundary mode: the walk straddles an end of [lo, hi); each
		// child's range is computed and compared before descending.
		d := e.depth
		if e.cursor[d] >= e.branch[d] {
			// Level exhausted: backtrack.
			e.cursor[d] = 0
			if d == 0 {
				e.done = true
				break
			}
			e.depth--
			p.Ascend()
			continue
		}
		r := e.cursor[d]
		e.cursor[d]++
		childDepth := d + 1
		// number(child) = number(parent) + rank·weight(child) (eq. 6).
		e.childNum.SetInt64(int64(r))
		e.childNum.Mul(e.childNum, e.nb.weights[childDepth])
		e.childNum.Add(e.childNum, e.num[d])
		if e.childNum.Cmp(e.hi) >= 0 {
			// Depth-first order visits numbers in ascending order:
			// once a child starts at or past hi, every remaining
			// node does too. The whole walk is finished.
			e.done = true
			break
		}
		e.childEnd.Add(e.childNum, e.nb.weights[childDepth])
		if e.childEnd.Cmp(e.lo) <= 0 {
			// Entirely before lo: this subtree belongs to nobody
			// here (it was either already explored under a
			// duplicated interval or assigned elsewhere). Skip
			// without descending and without counting.
			continue
		}
		// A node is charged to the process that owns its leftmost leaf
		// (a node's number IS that leaf). When childNum < lo the ground
		// before lo — including this node — was already charged to
		// whoever explored it; re-descending through it to reach lo is
		// the O(depth) unfold of eq. 8–9, not new exploration, so it is
		// neither counted nor billed against the step budget. This keeps
		// node accounting partition-invariant: summed over any partition
		// of the tree's range, Explored equals the sequential count.
		counted := e.childNum.Cmp(e.lo) >= 0
		if counted {
			explored++
			e.stats.Explored++
		}
		e.path[d] = r
		p.Descend(r)
		if childDepth == depthMax {
			// A leaf's range is one unit wide, so it can never straddle
			// lo: counted is always true here.
			e.stats.Leaves++
			if c := p.Cost(); c < e.best.Cost {
				e.improve(c, childDepth)
			}
			p.Ascend()
			continue
		}
		if b := p.Bound(e.best.Cost); b >= e.best.Cost {
			// The elimination operator. Pruning is justified by the
			// cost of a feasible solution, so it stays valid for any
			// process that may re-explore this region later; skipped
			// numbers inside the folded interval are at worst
			// redundant work after a failure, never lost work.
			if counted {
				e.stats.Pruned++
			}
			p.Ascend()
			continue
		}
		e.num[childDepth].Set(e.childNum)
		e.depth++
		if e.childNum.Cmp(e.lo) >= 0 && e.childEnd.Cmp(e.hi) <= 0 {
			// [childNum, childEnd) ⊆ [lo, hi): everything below is
			// ours. Drop into the boundary-free fast loop until the
			// walk resurfaces at this depth.
			e.interior = childDepth
		}
	}
	if e.done {
		// Rewind the problem state so the explorer can be reused with
		// a fresh interval via Reassign.
		e.interior = -1
		for e.depth > 0 {
			e.depth--
			p.Ascend()
		}
		for d := range e.cursor {
			e.cursor[d] = 0
		}
	}
	return explored, e.done
}

// improve records a new incumbent found at the current leaf and fires the
// sharing hook.
func (e *Explorer) improve(cost int64, leafDepth int) {
	e.best.Cost = cost
	e.best.Path = append(e.best.Path[:0], e.path[:leafDepth]...)
	e.stats.Improved++
	if e.OnImprove != nil {
		e.OnImprove(e.best.Clone())
	}
}

// Reassign gives the explorer a new interval to explore, keeping the
// incumbent and cumulative statistics. It is how a worker starts its next
// work unit after finishing one (§4.2: "a B&B process requests an interval
// ... when it finishes the exploration of its interval").
func (e *Explorer) Reassign(iv interval.Interval) {
	e.lo, e.hi = clampAssigned(iv, e.nb)
	e.done = e.lo.Cmp(e.hi) >= 0
	e.depth = 0
	e.interior = -1
	for d := range e.cursor {
		e.cursor[d] = 0
	}
	for d := range e.num {
		e.num[d].SetInt64(0)
	}
	e.p.Reset()
}

// Run explores the assigned interval to completion in stepBudget-sized
// slices and returns the best solution and the statistics. It is a
// convenience for single-worker uses (examples, tests, the sequential
// comparison in benchmarks).
func (e *Explorer) Run(stepBudget int64) (bb.Solution, bb.Stats) {
	if stepBudget <= 0 {
		stepBudget = 1 << 16
	}
	for {
		if _, done := e.Step(stepBudget); done {
			return e.Best(), e.Stats()
		}
	}
}
