package core

import (
	"math/big"

	"repro/internal/bb"
	"repro/internal/interval"
)

// Explorer is the interval-driven depth-first Branch and Bound engine: the
// B&B process of the paper's farmer–worker architecture (§4). It explores
// exactly the leaf numbers of an assigned interval [A, B), maintains the
// local best solution, and can fold its remaining work back into an interval
// at any moment for communication and checkpointing (§3: "the interval is
// used for communications and check-pointing, while the list of active nodes
// is used for exploration").
//
// The exploration hot loop performs a constant number of big.Int operations
// per visited node on reused buffers and allocates nothing; numbers are
// tracked incrementally along the path (number(child) = number(parent) +
// rank·weight(child), a direct consequence of eq. 6).
//
// An Explorer is not safe for concurrent use; workers own one each and
// serialize external updates (interval restriction, incumbent sharing)
// through their message loop.
type Explorer struct {
	p  bb.Problem
	nb *Numbering

	lo, hi *big.Int // assigned interval [lo, hi)

	// Depth-first walk state. cursor[d] is the rank of the next child to
	// try at depth d; the current path is cursor[d]-1 for d < depth.
	cursor []int
	depth  int
	num    []*big.Int // num[d] = number of the current path node at depth d
	path   []int      // rank path of the current position (path[d] valid for d <= depth)

	childNum *big.Int // scratch: number of the child being examined
	childEnd *big.Int // scratch: end of the child's range

	best  bb.Solution
	stats bb.Stats
	done  bool

	// OnImprove, when non-nil, is invoked synchronously each time the
	// local best solution improves — the hook behind the paper's rule (2)
	// of solution sharing: "immediately informs the coordinator of any
	// solution which improves its local solution" (§4.4). The callback
	// receives a private copy of the solution.
	OnImprove func(bb.Solution)
}

// NewExplorer builds an explorer for the problem over the given interval,
// primed with the initial incumbent cost initialUpper (bb.Infinity when no
// upper bound is known). The interval is clamped to the tree's root range.
func NewExplorer(p bb.Problem, nb *Numbering, iv interval.Interval, initialUpper int64) *Explorer {
	e := &Explorer{
		p:        p,
		nb:       nb,
		cursor:   make([]int, nb.Depth()+1),
		num:      make([]*big.Int, nb.Depth()+1),
		path:     make([]int, nb.Depth()+1),
		childNum: new(big.Int),
		childEnd: new(big.Int),
		best:     bb.Solution{Cost: initialUpper},
	}
	for d := range e.num {
		e.num[d] = new(big.Int)
	}
	clamped := iv.Intersect(nb.RootRange())
	e.lo, e.hi = clamped.A(), clamped.B()
	e.done = clamped.IsEmpty()
	p.Reset()
	return e
}

// Numbering returns the numbering the explorer navigates with.
func (e *Explorer) Numbering() *Numbering { return e.nb }

// Done reports whether the assigned interval is fully explored.
func (e *Explorer) Done() bool { return e.done }

// Best returns a copy of the local best solution found or adopted so far.
func (e *Explorer) Best() bb.Solution { return e.best.Clone() }

// Stats returns a snapshot of the exploration counters.
func (e *Explorer) Stats() bb.Stats { return e.stats }

// AdoptBest lowers the incumbent cost to the given externally discovered
// value if it improves on the local one. The path is unknown to this
// process, so only the cost is kept — enough for the bounding operator.
// This is rule (3) of solution sharing: "regularly reads SOLUTION to update
// its local optimal solution" (§4.4).
func (e *Explorer) AdoptBest(cost int64) {
	if cost < e.best.Cost {
		e.best = bb.Solution{Cost: cost}
	}
}

// Restrict intersects the assigned interval with the coordinator's copy
// (eq. 14). Shrinking the end is the normal effect of load balancing (the
// holder "is informed to limit its exploration to [A,C) instead of [A,B)",
// §4.2); advancing the beginning happens when a duplicated interval was
// partly explored by another process. Both take effect lazily: the walk
// skips numbers that fall outside on its way.
func (e *Explorer) Restrict(iv interval.Interval) {
	if a := iv.A(); a.Cmp(e.lo) > 0 {
		e.lo = a
	}
	if b := iv.B(); b.Cmp(e.hi) < 0 {
		e.hi = b
	}
	if e.lo.Cmp(e.hi) >= 0 {
		e.done = true
	}
}

// nextNumber returns the number of the next node the walk will visit, or nil
// if the walk is exhausted. The next node is at the deepest level that still
// has untried children (remaining children of deeper levels come first in
// depth-first order and carry the smallest numbers).
func (e *Explorer) nextNumber() *big.Int {
	if e.done {
		return nil
	}
	for d := e.depth; d >= 0; d-- {
		if e.cursor[d] < e.nb.shape.Branching(d) {
			n := big.NewInt(int64(e.cursor[d]))
			n.Mul(n, e.nb.weights[d+1])
			n.Add(n, e.num[d])
			return n
		}
	}
	return nil
}

// Remaining folds the not-yet-explored part of the assigned interval
// (eq. 10 applied to the live frontier). It is what the worker sends to the
// coordinator on every checkpoint/update (§4.1). The result is empty when
// exploration is finished.
func (e *Explorer) Remaining() interval.Interval {
	n := e.nextNumber()
	if n == nil {
		return interval.New(e.hi, e.hi)
	}
	if n.Cmp(e.lo) < 0 {
		n.Set(e.lo)
	}
	return interval.New(n, e.hi)
}

// Step explores up to budget nodes and returns how many were actually
// visited and whether the interval is now fully explored. A zero or negative
// budget visits nothing. Step is the single entry point used by both the
// goroutine runtime and the discrete-event grid simulator, so simulated
// statistics come from real exploration.
func (e *Explorer) Step(budget int64) (explored int64, done bool) {
	if e.done {
		return 0, true
	}
	p := e.p
	shape := e.nb.shape
	depthMax := e.nb.Depth()
	for explored < budget {
		if e.cursor[e.depth] >= shape.Branching(e.depth) {
			// Level exhausted: backtrack.
			e.cursor[e.depth] = 0
			if e.depth == 0 {
				e.done = true
				break
			}
			e.depth--
			p.Ascend()
			continue
		}
		r := e.cursor[e.depth]
		e.cursor[e.depth]++
		childDepth := e.depth + 1
		// number(child) = number(parent) + rank·weight(child) (eq. 6).
		e.childNum.SetInt64(int64(r))
		e.childNum.Mul(e.childNum, e.nb.weights[childDepth])
		e.childNum.Add(e.childNum, e.num[e.depth])
		if e.childNum.Cmp(e.hi) >= 0 {
			// Depth-first order visits numbers in ascending order:
			// once a child starts at or past hi, every remaining
			// node does too. The whole walk is finished.
			e.done = true
			break
		}
		e.childEnd.Add(e.childNum, e.nb.weights[childDepth])
		if e.childEnd.Cmp(e.lo) <= 0 {
			// Entirely before lo: this subtree belongs to nobody
			// here (it was either already explored under a
			// duplicated interval or assigned elsewhere). Skip
			// without descending and without counting.
			continue
		}
		explored++
		e.stats.Explored++
		e.path[e.depth] = r
		p.Descend(r)
		if childDepth == depthMax {
			e.stats.Leaves++
			if c := p.Cost(); c < e.best.Cost {
				e.best.Cost = c
				e.best.Path = append(e.best.Path[:0], e.path[:childDepth]...)
				e.stats.Improved++
				if e.OnImprove != nil {
					e.OnImprove(e.best.Clone())
				}
			}
			p.Ascend()
			continue
		}
		if b := p.Bound(); b >= e.best.Cost {
			// The elimination operator. Pruning is justified by the
			// cost of a feasible solution, so it stays valid for any
			// process that may re-explore this region later; skipped
			// numbers inside the folded interval are at worst
			// redundant work after a failure, never lost work.
			e.stats.Pruned++
			p.Ascend()
			continue
		}
		e.num[childDepth].Set(e.childNum)
		e.depth++
	}
	if e.done {
		// Rewind the problem state so the explorer can be reused with
		// a fresh interval via Reassign.
		for e.depth > 0 {
			e.depth--
			p.Ascend()
		}
		for d := range e.cursor {
			e.cursor[d] = 0
		}
	}
	return explored, e.done
}

// Reassign gives the explorer a new interval to explore, keeping the
// incumbent and cumulative statistics. It is how a worker starts its next
// work unit after finishing one (§4.2: "a B&B process requests an interval
// ... when it finishes the exploration of its interval").
func (e *Explorer) Reassign(iv interval.Interval) {
	clamped := iv.Intersect(e.nb.RootRange())
	e.lo, e.hi = clamped.A(), clamped.B()
	e.done = clamped.IsEmpty()
	e.depth = 0
	for d := range e.cursor {
		e.cursor[d] = 0
	}
	for d := range e.num {
		e.num[d].SetInt64(0)
	}
	e.p.Reset()
}

// Run explores the assigned interval to completion in stepBudget-sized
// slices and returns the best solution and the statistics. It is a
// convenience for single-worker uses (examples, tests, the sequential
// comparison in benchmarks).
func (e *Explorer) Run(stepBudget int64) (bb.Solution, bb.Stats) {
	if stepBudget <= 0 {
		stepBudget = 1 << 16
	}
	for {
		if _, done := e.Step(stepBudget); done {
			return e.Best(), e.Stats()
		}
	}
}
