package core

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bb"
	"repro/internal/interval"
	"repro/internal/knapsack"
	"repro/internal/qap"
	"repro/internal/tree"
)

// TestExplorerRandomRestrictFuzz is the torture test of the intersection
// mechanics: one explorer owns the whole tree but is randomly Restricted
// mid-run (end shrinks, like load balancing); the carved-off pieces are
// explored by fresh explorers; the union must still find the global
// optimum, whatever the interleaving.
func TestExplorerRandomRestrictFuzz(t *testing.T) {
	p := flowshopProblem(8, 5, 5)
	nb := NewNumbering(p.Shape())
	want, _ := bb.Solve(p, bb.Infinity)
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		type pending struct{ iv interval.Interval }
		queue := []pending{{nb.RootRange()}}
		best := bb.Infinity
		for len(queue) > 0 {
			work := queue[0]
			queue = queue[1:]
			e := NewExplorer(p, nb, work.iv, best)
			for !e.Done() {
				e.Step(int64(1 + rng.Intn(200)))
				// Randomly steal the right part of what remains.
				if rng.Intn(3) == 0 {
					rem := e.Remaining()
					if rem.IsEmpty() {
						continue
					}
					span := new(big.Int).Sub(rem.B(), rem.A())
					if span.Sign() <= 0 {
						continue
					}
					cut := new(big.Int).Rand(rng, span)
					cut.Add(cut, rem.A())
					keep, donated := rem.SplitAt(cut)
					e.Restrict(keep)
					if !donated.IsEmpty() {
						queue = append(queue, pending{donated})
					}
				}
			}
			if b := e.Best(); b.Cost < best {
				best = b.Cost
			}
		}
		if best != want.Cost {
			t.Fatalf("trial %d: union of restricted explorations found %d, want %d", trial, best, want.Cost)
		}
	}
}

// TestExplorerBinaryTreeDomain: the engine on the knapsack's binary tree
// with interval partitions — binary shapes exercise eq. (2) weights through
// the whole stack.
func TestExplorerBinaryTreeDomain(t *testing.T) {
	ins := knapsack.Random(16, 21)
	factory := func() bb.Problem { return knapsack.NewProblem(ins) }
	want, _ := bb.Solve(factory(), bb.Infinity)
	nb := NewNumbering(factory().Shape())
	total := nb.LeafCount().Int64() // 2^16
	// Four quarters explored independently.
	best := bb.Infinity
	for q := int64(0); q < 4; q++ {
		iv := interval.FromInt64(q*total/4, (q+1)*total/4)
		e := NewExplorer(factory(), nb, iv, bb.Infinity)
		sol, _ := e.Run(1 << 12)
		if sol.Cost < best {
			best = sol.Cost
		}
	}
	if best != want.Cost {
		t.Fatalf("quartered binary exploration best %d, want %d", best, want.Cost)
	}
}

// TestExplorerQAPDomain: the fourth domain through the interval engine with
// a mid-run restriction.
func TestExplorerQAPDomain(t *testing.T) {
	ins := qap.Random(7, 15, 9)
	factory := func() bb.Problem { return qap.NewProblem(ins) }
	want, _ := bb.Solve(factory(), bb.Infinity)
	nb := NewNumbering(factory().Shape())

	e := NewExplorer(factory(), nb, nb.RootRange(), bb.Infinity)
	e.Step(50)
	rem := e.Remaining()
	mid := new(big.Int).Add(rem.A(), rem.B())
	mid.Rsh(mid, 1)
	keep, donated := rem.SplitAt(mid)
	e.Restrict(keep)
	sol1, _ := e.Run(1 << 12)

	e2 := NewExplorer(factory(), nb, donated, bb.Infinity)
	sol2, _ := e2.Run(1 << 12)

	best := sol1.Cost
	if sol2.Cost < best {
		best = sol2.Cost
	}
	if best != want.Cost {
		t.Fatalf("split QAP exploration best %d, want %d", best, want.Cost)
	}
}

// TestUnfoldMatchesExplorerFrontier: the explicit Unfold list and the
// engine's internal selective descent agree — exploring unfolded nodes one
// by one visits exactly the same leaves as exploring the interval directly.
func TestUnfoldMatchesExplorerFrontier(t *testing.T) {
	shape := tree.Uniform{P: 5, K: 3}
	nb := NewNumbering(shape)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		a := rng.Int63n(243)
		b := a + rng.Int63n(243-a) + 1
		iv := interval.FromInt64(a, b)

		direct := &countingProblem{shape: shape, visited: make(map[int64]int)}
		NewExplorer(direct, nb, iv, bb.Infinity).Run(64)

		perNode := &countingProblem{shape: shape, visited: make(map[int64]int)}
		for _, ref := range Unfold(nb, iv) {
			sub := NewExplorer(perNode, nb, nb.Range(ref.Ranks), bb.Infinity)
			sub.Run(64)
		}
		if len(direct.visited) != len(perNode.visited) {
			t.Fatalf("[%d,%d): direct visited %d leaves, per-node %d", a, b, len(direct.visited), len(perNode.visited))
		}
		for n := range direct.visited {
			if perNode.visited[n] != 1 {
				t.Fatalf("[%d,%d): leaf %d visited %d times via unfold", a, b, n, perNode.visited[n])
			}
		}
	}
}
