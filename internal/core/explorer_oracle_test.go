package core

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bb"
	"repro/internal/flowshop"
	"repro/internal/interval"
	"repro/internal/knapsack"
	"repro/internal/tsp"
)

// This file pins the interior-mode walk to the seed explorer: referenceWalk
// is a faithful port of the original Step loop, which computes and compares
// the child number and range on every visited node (no interior fast path).
// The randomized oracle asserts byte-identical statistics — Explored,
// Pruned, Leaves, Improved — and the same best solution over random
// problems × intervals, with the new explorer additionally driven through
// random step slicing and per-slice Remaining() folds to exercise the lazy
// number materialization at every boundary.

// referenceWalk explores [lo, hi) with the seed algorithm and returns the
// best solution and statistics.
func referenceWalk(p bb.Problem, nb *Numbering, iv interval.Interval, initialUpper int64) (bb.Solution, bb.Stats) {
	clamped := iv.Intersect(nb.RootRange())
	lo, hi := clamped.A(), clamped.B()
	best := bb.Solution{Cost: initialUpper}
	var stats bb.Stats
	if clamped.IsEmpty() {
		return best, stats
	}
	depthMax := nb.Depth()
	cursor := make([]int, depthMax+1)
	num := make([]*big.Int, depthMax+1)
	for d := range num {
		num[d] = new(big.Int)
	}
	path := make([]int, depthMax+1)
	childNum := new(big.Int)
	childEnd := new(big.Int)
	depth := 0
	p.Reset()
	for {
		if cursor[depth] >= nb.shape.Branching(depth) {
			cursor[depth] = 0
			if depth == 0 {
				break
			}
			depth--
			p.Ascend()
			continue
		}
		r := cursor[depth]
		cursor[depth]++
		childDepth := depth + 1
		childNum.SetInt64(int64(r))
		childNum.Mul(childNum, nb.weights[childDepth])
		childNum.Add(childNum, num[depth])
		if childNum.Cmp(hi) >= 0 {
			break
		}
		childEnd.Add(childNum, nb.weights[childDepth])
		if childEnd.Cmp(lo) <= 0 {
			continue
		}
		// Same owner-counts rule as the explorer: a node straddling lo
		// was charged to whoever explored the ground before lo.
		counted := childNum.Cmp(lo) >= 0
		if counted {
			stats.Explored++
		}
		path[depth] = r
		p.Descend(r)
		if childDepth == depthMax {
			stats.Leaves++
			if c := p.Cost(); c < best.Cost {
				best.Cost = c
				best.Path = append(best.Path[:0], path[:childDepth]...)
				stats.Improved++
			}
			p.Ascend()
			continue
		}
		if b := p.Bound(best.Cost); b >= best.Cost {
			if counted {
				stats.Pruned++
			}
			p.Ascend()
			continue
		}
		num[childDepth].Set(childNum)
		depth++
	}
	for depth > 0 {
		depth--
		p.Ascend()
	}
	return best, stats
}

// oracleCase describes one randomized scenario.
type oracleCase struct {
	name    string
	factory func() bb.Problem
}

// TestExplorerInteriorModeOracle: the tentpole equivalence oracle — ~200
// random (instance, interval) scenarios across three tree shapes, stats and
// best compared field by field against the reference walk.
func TestExplorerInteriorModeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for trial := 0; trial < 200; trial++ {
		var c oracleCase
		switch trial % 3 {
		case 0:
			jobs := 5 + rng.Intn(4)
			machines := 3 + rng.Intn(3)
			ins := flowshop.Taillard(jobs, machines, int64(trial+1))
			c = oracleCase{"flowshop", func() bb.Problem {
				return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
			}}
		case 1:
			ins := knapsack.Random(9+rng.Intn(5), int64(trial+1))
			c = oracleCase{"knapsack", func() bb.Problem { return knapsack.NewProblem(ins) }}
		case 2:
			ins := tsp.RandomEuclidean(6+rng.Intn(3), 200, int64(trial+1))
			c = oracleCase{"tsp", func() bb.Problem { return tsp.NewProblem(ins) }}
		}
		nb := NewNumbering(c.factory().Shape())
		total := nb.LeafCount()

		// Random interval, occasionally the full root range; random
		// initial incumbent, occasionally infinite.
		a := new(big.Int).Rand(rng, total)
		span := new(big.Int).Sub(total, a)
		bEnd := new(big.Int).Rand(rng, span)
		bEnd.Add(bEnd, a)
		bEnd.Add(bEnd, big.NewInt(1))
		if trial%7 == 0 {
			a.SetInt64(0)
			bEnd.Set(total)
		}
		iv := interval.New(a, bEnd)
		initialUpper := bb.Infinity
		if trial%5 == 0 {
			seed, _ := bb.Solve(c.factory(), bb.Infinity)
			initialUpper = seed.Cost + int64(rng.Intn(3))
		}

		wantSol, wantStats := referenceWalk(c.factory(), nb, iv, initialUpper)

		// Drive the new explorer in random step slices, folding Remaining
		// at every slice edge so the lazy interior-number reconstruction
		// is exercised mid-subtree, and verify the fold is monotone.
		e := NewExplorer(c.factory(), nb, iv, initialUpper)
		prevA := new(big.Int).Set(a)
		for {
			_, done := e.Step(int64(1 + rng.Intn(64)))
			rem := e.Remaining()
			if !rem.IsEmpty() {
				if rem.CmpA(prevA) < 0 {
					t.Fatalf("trial %d (%s) %v: Remaining moved backwards", trial, c.name, iv)
				}
				rem.AInto(prevA)
			}
			if done {
				break
			}
		}
		gotSol, gotStats := e.Best(), e.Stats()

		if gotStats != wantStats {
			t.Fatalf("trial %d (%s) %v upper %d: stats %+v, reference %+v",
				trial, c.name, iv, initialUpper, gotStats, wantStats)
		}
		if gotSol.Cost != wantSol.Cost {
			t.Fatalf("trial %d (%s) %v: best %d, reference %d", trial, c.name, iv, gotSol.Cost, wantSol.Cost)
		}
		if wantSol.Valid() {
			if len(gotSol.Path) != len(wantSol.Path) {
				t.Fatalf("trial %d (%s): path length %d, reference %d", trial, c.name, len(gotSol.Path), len(wantSol.Path))
			}
			for i := range wantSol.Path {
				if gotSol.Path[i] != wantSol.Path[i] {
					t.Fatalf("trial %d (%s): path %v, reference %v", trial, c.name, gotSol.Path, wantSol.Path)
				}
			}
		}
	}
}

// TestExplorerRestrictInsideInterior: a Restrict landing while the walk is
// deep inside an interior-mode subtree must materialize the lazily skipped
// numbers correctly — restricting to exactly the currently remaining
// interval is a semantic no-op and must reproduce the unrestricted
// statistics; restricting to a shrunk end must match a reference walk over
// the union of the explored prefix and the kept part.
func TestExplorerRestrictInsideInterior(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ins := flowshop.Taillard(8, 4, 11)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	nb := NewNumbering(factory().Shape())

	for trial := 0; trial < 40; trial++ {
		ref := NewExplorer(factory(), nb, nb.RootRange(), bb.Infinity)
		refSol, refStats := ref.Run(1 << 14)

		e := NewExplorer(factory(), nb, nb.RootRange(), bb.Infinity)
		// Walk a random distance in, then apply the no-op restriction.
		e.Step(int64(1 + rng.Intn(500)))
		e.Restrict(e.Remaining())
		sol, stats := e.Run(1 << 14)
		if stats != refStats {
			t.Fatalf("trial %d: no-op Restrict changed stats: %+v vs %+v", trial, stats, refStats)
		}
		if sol.Cost != refSol.Cost {
			t.Fatalf("trial %d: no-op Restrict changed best: %d vs %d", trial, sol.Cost, refSol.Cost)
		}

		// Shrink the end mid-run; both halves together must equal the
		// whole (the load-balancing invariant), verified via the oracle
		// reference on the donated part.
		e2 := NewExplorer(factory(), nb, nb.RootRange(), bb.Infinity)
		e2.Step(int64(1 + rng.Intn(500)))
		rem := e2.Remaining()
		if rem.IsEmpty() {
			continue
		}
		mid := new(big.Int).Add(rem.A(), rem.B())
		mid.Rsh(mid, 1)
		keep, donated := rem.SplitAt(mid)
		e2.Restrict(keep)
		aSol, _ := e2.Run(1 << 14)
		bSol, _ := referenceWalk(factory(), nb, donated, bb.Infinity)
		best := aSol.Cost
		if bSol.Cost < best {
			best = bSol.Cost
		}
		if best != refSol.Cost {
			t.Fatalf("trial %d: restricted halves best %d, want %d", trial, best, refSol.Cost)
		}
	}
}
