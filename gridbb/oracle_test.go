package gridbb_test

import (
	"testing"

	"repro/gridbb"
	"repro/internal/flowshop"
	"repro/internal/knapsack"
	"repro/internal/qap"
	"repro/internal/tsp"
)

// TestCrossDomainOracle is the problem-independence claim of the paper's
// Table 3 as a machine-checked oracle: every runtime the facade offers —
// the farmer–worker grid and the decentralized p2p ring — must prove the
// sequential baseline's optimum on all four problem domains, and the
// returned path must be a real leaf of that cost.
func TestCrossDomainOracle(t *testing.T) {
	cases := []struct {
		name    string
		factory func() gridbb.Problem
	}{
		{"flowshop", func() gridbb.Problem {
			return flowshop.NewProblem(flowshop.Taillard(10, 6, 13), flowshop.BoundOneMachine, flowshop.PairsAll)
		}},
		{"tsp", func() gridbb.Problem { return tsp.NewProblem(tsp.RandomEuclidean(9, 150, 6)) }},
		{"qap", func() gridbb.Problem { return qap.NewProblem(qap.Random(7, 12, 5)) }},
		{"knapsack", func() gridbb.Problem { return knapsack.NewProblem(knapsack.Random(16, 11)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantStats := gridbb.SolveSequential(tc.factory(), gridbb.Infinity)
			if wantStats.Explored == 0 {
				t.Fatal("degenerate instance: sequential baseline explored nothing")
			}

			res, err := gridbb.Solve(tc.factory(), gridbb.Options{
				Workers:           3,
				ProblemFactory:    tc.factory,
				UpdatePeriodNodes: 512,
			})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if res.Best.Cost != want.Cost {
				t.Fatalf("farmer runtime found %d, sequential %d", res.Best.Cost, want.Cost)
			}
			assertLeafCost(t, tc.factory(), res.Best)

			p2p, err := gridbb.SolveP2P(tc.factory, gridbb.P2POptions{Peers: 3, Seed: 7})
			if err != nil {
				t.Fatalf("SolveP2P: %v", err)
			}
			if p2p.Best.Cost != want.Cost {
				t.Fatalf("p2p runtime found %d, sequential %d", p2p.Best.Cost, want.Cost)
			}
			assertLeafCost(t, tc.factory(), p2p.Best)
		})
	}
}

// assertLeafCost walks the problem down the solution's rank path and
// re-prices the leaf: a cost without a matching leaf would be an incumbent
// fabricated by bookkeeping rather than found by exploration.
func assertLeafCost(t *testing.T, p gridbb.Problem, sol gridbb.Solution) {
	t.Helper()
	if !sol.Valid() {
		t.Fatalf("solution invalid: %+v", sol)
	}
	depth := p.Shape().Depth()
	if len(sol.Path) != depth {
		t.Fatalf("path length %d, tree depth %d", len(sol.Path), depth)
	}
	p.Reset()
	for d, r := range sol.Path {
		if r < 0 || r >= p.Shape().Branching(d) {
			t.Fatalf("rank %d out of range at depth %d", r, d)
		}
		p.Descend(r)
	}
	if got := p.Cost(); got != sol.Cost {
		t.Fatalf("path evaluates to %d, solution claims %d", got, sol.Cost)
	}
}
