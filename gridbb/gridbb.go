// Package gridbb is the public API of this repository: a grid-enabled
// Branch and Bound library reproducing Mezmaz, Melab and Talbi,
// "A Grid-enabled Branch and Bound Algorithm for Solving Challenging
// Combinatorial Optimization Problems" (INRIA RR-5945 / IPPS 2007).
//
// The library codes B&B work units as intervals of node numbers over a
// regular search tree (weights, numbers and ranges of §3; fold and unfold
// operators of §3.4–3.5) and runs them under a farmer–worker architecture
// with dynamic load balancing, checkpoint-based fault tolerance, implicit
// termination detection and global solution sharing (§4).
//
// Quick start — define or pick a Problem (see repro/internal/flowshop,
// repro/internal/tsp, repro/internal/knapsack for complete examples), then:
//
//	res, err := gridbb.Solve(problem, gridbb.Options{Workers: 8, ProblemFactory: factory})
//
// For multi-process deployments, run a farmer with ServeFarmer and connect
// workers with RunRemoteWorker — or RunRemoteWorkerParallel to shard each
// worker's interval across its host's cores behind the unchanged
// single-worker protocol (see cmd/farmer, cmd/worker and the package
// examples). SolveP2P runs the decentralized variant with no coordinator
// at all.
//
// README.md is the repository tour; DESIGN.md records the engineering
// decisions (the two-mode explorer §1, the multicore shard engine §7, the
// farmer's grid-scale selection index §8).
package gridbb

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/interval"
	"repro/internal/p2p"
	"repro/internal/transport"
	"repro/internal/worker"
)

// Problem is the problem abstraction: a backtracking state machine over a
// regular tree. See repro/internal/bb for the full contract.
type Problem = bb.Problem

// Solution is an incumbent (cost + rank path).
type Solution = bb.Solution

// Stats are exploration counters.
type Stats = bb.Stats

// Interval is a half-open work unit [A, B) of node numbers.
type Interval = interval.Interval

// Numbering assigns numbers/ranges to tree nodes (§3.1–3.3).
type Numbering = core.Numbering

// Explorer is the interval-driven DFS engine (one B&B process).
type Explorer = core.Explorer

// NodeRef identifies a node by its rank path.
type NodeRef = core.NodeRef

// Farmer is the coordinator: it owns INTERVALS (served to requesters by
// the §4.2 selection and partitioning operators, answered at grid scale
// by an indexed structure — DESIGN.md §8) and SOLUTION, expires silent
// workers' leases, and checkpoints both to a two-file store.
type Farmer = farmer.Farmer

// WorkerConfig parameterizes one worker process.
type WorkerConfig = worker.Config

// Infinity is the "no solution / no bound" cost sentinel.
const Infinity = bb.Infinity

// NewNumbering builds the node numbering of a problem's tree.
func NewNumbering(p Problem) *Numbering { return core.NewNumbering(p.Shape()) }

// NewExplorer builds an interval-driven engine over iv primed with
// initialUpper.
func NewExplorer(p Problem, nb *Numbering, iv Interval, initialUpper int64) *Explorer {
	return core.NewExplorer(p, nb, iv, initialUpper)
}

// Fold folds an active-node list into its interval (eq. 10).
func Fold(nb *Numbering, active []NodeRef) (Interval, error) { return core.Fold(nb, active) }

// Unfold unfolds an interval into its minimal active-node list (eq. 11).
func Unfold(nb *Numbering, iv Interval) []NodeRef { return core.Unfold(nb, iv) }

// SolveSequential runs the single-process baseline B&B to optimality.
func SolveSequential(p Problem, initialUpper int64) (Solution, Stats) {
	return bb.Solve(p, initialUpper)
}

// Options parameterizes Solve.
type Options struct {
	// Workers is the number of in-process B&B workers (goroutines).
	// Default: 4.
	Workers int
	// Cores is the number of shard explorers inside each worker (the
	// intra-worker multicore engine, DESIGN.md §7): the worker splits its
	// assigned interval across Cores goroutines that rebalance by halving
	// steals and share one incumbent, while the farmer still sees one
	// fold, one power and one checkpoint per worker. Zero or one keeps
	// the paper's single-explorer worker. Requires a ProblemFactory.
	Cores int
	// InitialUpper primes the global best cost; Infinity (the zero
	// Options value is normalized to it) when unknown. The paper's runs
	// start from the best known makespan (§5.3).
	InitialUpper int64
	// InitialPath optionally carries the rank path of the initial
	// solution.
	InitialPath []int
	// UpdatePeriodNodes is the worker checkpoint period in nodes: how
	// much exploration may sit unreported between two interval updates
	// (and so the most a crash can cost). Default: 65536.
	UpdatePeriodNodes int64
	// Threshold is the duplication threshold of the partitioning
	// operator (§4.2); nil uses the farmer default.
	Threshold *big.Int
	// CheckpointDir, when non-empty, attaches a two-file checkpoint
	// store and snapshots the farmer every CheckpointPeriod.
	CheckpointDir string
	// CheckpointPeriod defaults to 30 time.Minute like the paper's
	// coordinator; only used when CheckpointDir is set.
	CheckpointPeriod time.Duration
	// ProblemFactory must return a fresh, independent Problem instance
	// for each worker. Required when Workers > 1 because Problem state
	// machines are single-threaded. When nil, Solve runs a single
	// worker on the given problem.
	ProblemFactory func() Problem
	// Subtrees ≥ 2 coordinates the workers through a 2-level farmer
	// tree (DESIGN.md §9): workers attach to sub-farmers round-robin,
	// each sub-farmer aggregates its fleet into one fold and one power
	// over the unchanged protocol, and the root farmer only arbitrates
	// inter-subtree rebalancing. Zero or one keeps the paper's flat
	// farmer. Result.Counters are the root's either way.
	Subtrees int
}

// Result is the outcome of a parallel resolution.
type Result struct {
	// Best is the optimal solution (with proof: the whole root interval
	// was explored).
	Best Solution
	// Counters are the farmer-side protocol statistics.
	Counters farmer.Counters
	// Redundancy is the duplicated-work accounting.
	Redundancy farmer.RedundancyStats
	// PerWorker are the individual worker results.
	PerWorker []worker.Result
	// Elapsed is the wall-clock duration of the resolution.
	Elapsed time.Duration
}

// Solve runs the full farmer–worker resolution in-process: one coordinator
// goroutine-safe monitor and opt.Workers worker goroutines exchanging
// intervals. It terminates when INTERVALS is empty and returns the proven
// optimum.
func Solve(p Problem, opt Options) (Result, error) {
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if opt.InitialUpper == 0 {
		opt.InitialUpper = Infinity
	}
	if opt.Workers > 1 && opt.ProblemFactory == nil {
		return Result{}, fmt.Errorf("gridbb: Workers=%d needs a ProblemFactory (Problem state is single-threaded)", opt.Workers)
	}
	if opt.Cores > 1 && opt.ProblemFactory == nil {
		return Result{}, fmt.Errorf("gridbb: Cores=%d needs a ProblemFactory (one Problem per shard)", opt.Cores)
	}
	nb := core.NewNumbering(p.Shape())

	fopts := []farmer.Option{farmer.WithInitialBest(opt.InitialUpper, opt.InitialPath)}
	if opt.Threshold != nil {
		fopts = append(fopts, farmer.WithThreshold(opt.Threshold))
	}
	var store *checkpoint.Store
	if opt.CheckpointDir != "" {
		var err error
		store, err = checkpoint.NewStore(opt.CheckpointDir)
		if err != nil {
			return Result{}, err
		}
		fopts = append(fopts, farmer.WithCheckpointStore(store))
	}
	var (
		f  *farmer.Farmer
		tr *farmer.Tree
	)
	if opt.Subtrees >= 2 {
		var inner []farmer.Option
		if opt.Threshold != nil {
			inner = append(inner, farmer.WithThreshold(opt.Threshold))
		}
		tr = farmer.NewTree(nb.RootRange(), farmer.TreeConfig{
			Subtrees:     opt.Subtrees,
			RootOptions:  fopts,
			InnerOptions: inner,
		})
		f = tr.Root
	} else {
		f = farmer.New(nb.RootRange(), fopts...)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if tr != nil {
		// The time half of the sub→root fold cadence: quiet fleets must
		// keep their root leases alive even when the piggyback cadence
		// (one fold per UpdateEvery fleet messages) has nothing to ride.
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					tr.Pulse()
				}
			}
		}()
	}
	if store != nil {
		period := opt.CheckpointPeriod
		if period <= 0 {
			period = 30 * time.Minute
		}
		go func() {
			ticker := time.NewTicker(period)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					// Best-effort: a failed snapshot must not
					// kill the resolution; the previous one
					// remains valid.
					_ = f.Checkpoint()
				}
			}
		}()
	}

	start := time.Now()
	results := make([]worker.Result, opt.Workers)
	errs := make([]error, opt.Workers)
	var wg sync.WaitGroup
	for i := 0; i < opt.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := worker.Config{
				ID:                transport.WorkerID(fmt.Sprintf("w%03d", i)),
				Power:             1,
				UpdatePeriodNodes: opt.UpdatePeriodNodes,
				Cores:             opt.Cores,
			}
			coord := transport.Coordinator(f)
			if tr != nil {
				coord = tr.Sub(i)
			}
			if opt.Cores > 1 {
				results[i], errs[i] = worker.RunParallel(ctx, cfg, coord, opt.ProblemFactory)
				return
			}
			prob := p
			if opt.ProblemFactory != nil {
				prob = opt.ProblemFactory()
			}
			results[i], errs[i] = worker.Run(ctx, cfg, coord, prob)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	if tr != nil {
		// One final pulse: flush straggler statistics (fleet checkpoints
		// that landed after each sub-farmer's last fold), so the root
		// counters below report the whole tree.
		tr.Pulse()
	}
	if store != nil {
		// Final snapshot records the completed state.
		if err := f.Checkpoint(); err != nil {
			return Result{}, err
		}
	}
	return Result{
		Best:       f.Best(),
		Counters:   f.Counters(),
		Redundancy: f.Redundancy(),
		PerWorker:  results,
		Elapsed:    time.Since(start),
	}, nil
}

// P2POptions parameterizes the decentralized runtime.
type P2POptions = p2p.Options

// P2PResult is the outcome of a peer-to-peer resolution.
type P2PResult = p2p.Result

// SolveP2P runs the decentralized peer-to-peer variant (the paper's §6
// future work): no coordinator, hungry peers steal intervals directly from
// random victims, and termination is detected by a ring token. It proves
// the same optima as Solve; the trade-off is no central checkpoint.
func SolveP2P(factory func() Problem, opt P2POptions) (P2PResult, error) {
	return p2p.Solve(factory, opt)
}

// ServerOptions hardens a served farmer against a hostile WAN: read
// deadlines, connection caps, message-size limits, TLS and shared-token
// worker authentication. See transport.ServerOptions.
type ServerOptions = transport.ServerOptions

// DialOptions hardens a remote worker's client leg: per-call deadlines and
// retries (Policy), TLS, token. See transport.DialOptions.
type DialOptions = transport.DialOptions

// Policy is the per-call liveness discipline of the hardened transport:
// Timeout bounds one protocol call, Retries and Backoff pace re-attempts.
// See transport.Policy.
type Policy = transport.Policy

// ServeFarmer starts a TCP farmer for the problem's tree on addr and
// returns the server and the coordinator. Use cmd/farmer for the packaged
// binary.
func ServeFarmer(p Problem, addr string, opts ...farmer.Option) (*transport.Server, *Farmer, error) {
	return ServeFarmerWith(p, addr, ServerOptions{}, opts...)
}

// ServeFarmerWith is ServeFarmer with transport hardening options. The
// compact wire codec's reference interval defaults to the problem's root
// range — the same range the coordinator boundary pins — so negotiated
// connections delta-encode every interval against the tightest possible
// reference without the caller doing anything.
func ServeFarmerWith(p Problem, addr string, so ServerOptions, opts ...farmer.Option) (*transport.Server, *Farmer, error) {
	nb := core.NewNumbering(p.Shape())
	f := farmer.New(nb.RootRange(), opts...)
	if so.WireRef.IsEmpty() {
		so.WireRef = nb.RootRange()
	}
	srv, err := transport.ServeWith(f, addr, so)
	if err != nil {
		return nil, nil, err
	}
	return srv, f, nil
}

// RunRemoteWorker connects to a TCP farmer and works until the resolution
// finishes or the context is cancelled.
func RunRemoteWorker(ctx context.Context, addr string, cfg WorkerConfig, p Problem) (worker.Result, error) {
	return RunRemoteWorkerWith(ctx, addr, DialOptions{}, cfg, p)
}

// RunRemoteWorkerWith is RunRemoteWorker with transport hardening options
// (call deadlines, TLS, token). With do.Share set, every worker session
// in this process dialed with the same address and options multiplexes
// over ONE physical connection (transport.DialShared) instead of opening
// its own socket at the coordinator.
func RunRemoteWorkerWith(ctx context.Context, addr string, do DialOptions, cfg WorkerConfig, p Problem) (worker.Result, error) {
	if do.Share {
		shared := transport.DialShared(addr, do)
		defer shared.Close()
		return worker.Run(ctx, cfg, shared, p)
	}
	client, err := transport.DialWith(addr, do)
	if err != nil {
		return worker.Result{}, err
	}
	defer client.Close()
	return worker.Run(ctx, cfg, client, p)
}

// RunRemoteWorkerParallel connects to a TCP farmer and works with the
// multicore shard engine: cfg.Cores shard explorers (zero means all
// available cores) over one worker identity — the farmer sees the same
// single-worker protocol as RunRemoteWorker. factory must return a fresh
// Problem per call.
func RunRemoteWorkerParallel(ctx context.Context, addr string, cfg WorkerConfig, factory func() Problem) (worker.Result, error) {
	return RunRemoteWorkerParallelWith(ctx, addr, DialOptions{}, cfg, factory)
}

// RunRemoteWorkerParallelWith is RunRemoteWorkerParallel with transport
// hardening options (call deadlines, TLS, token). With do.Share set, the
// session multiplexes over one pooled connection per (addr, options)
// pair, like RunRemoteWorkerWith.
func RunRemoteWorkerParallelWith(ctx context.Context, addr string, do DialOptions, cfg WorkerConfig, factory func() Problem) (worker.Result, error) {
	if do.Share {
		shared := transport.DialShared(addr, do)
		defer shared.Close()
		return worker.RunParallel(ctx, cfg, shared, factory)
	}
	client, err := transport.DialWith(addr, do)
	if err != nil {
		return worker.Result{}, err
	}
	defer client.Close()
	return worker.RunParallel(ctx, cfg, client, factory)
}
