package gridbb_test

import (
	"context"
	"fmt"

	"repro/gridbb"
	"repro/internal/flowshop"
	"repro/internal/tree"
)

// ExampleSolve proves the optimum of a small flowshop instance with four
// workers exchanging intervals through an in-process farmer.
func ExampleSolve() {
	ins := flowshop.Taillard(9, 5, 7)
	factory := func() gridbb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	res, err := gridbb.Solve(factory(), gridbb.Options{Workers: 4, ProblemFactory: factory})
	if err != nil {
		fmt.Println(err)
		return
	}
	perm, _ := flowshop.PermutationOfPath(ins.Jobs, res.Best.Path)
	fmt.Printf("optimal makespan %d, schedule valid: %v\n", res.Best.Cost, ins.Makespan(perm) == res.Best.Cost)
	// Output:
	// optimal makespan 683, schedule valid: true
}

// ExampleRunRemoteWorkerParallel runs a real multi-process deployment in
// miniature: a TCP farmer (what cmd/farmer wraps) and one multicore worker
// (what cmd/worker -cores wraps) that shards its assigned interval across
// two explorers while the farmer sees the unchanged single-worker protocol
// — one fold, one power, one checkpoint per round.
func ExampleRunRemoteWorkerParallel() {
	ins := flowshop.Taillard(9, 5, 7)
	factory := func() gridbb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	srv, farmer, err := gridbb.ServeFarmer(factory(), "127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()

	cfg := gridbb.WorkerConfig{ID: "mc-worker", Power: 2, Cores: 2}
	if _, err := gridbb.RunRemoteWorkerParallel(context.Background(), srv.Addr(), cfg, factory); err != nil {
		fmt.Println(err)
		return
	}
	best := farmer.Best()
	perm, _ := flowshop.PermutationOfPath(ins.Jobs, best.Path)
	fmt.Printf("proven optimal makespan %d, schedule valid: %v, finished: %v\n",
		best.Cost, ins.Makespan(perm) == best.Cost, farmer.Done())
	// Output:
	// proven optimal makespan 683, schedule valid: true, finished: true
}

// ExampleUnfold shows the interval coding: an interval of node numbers
// unfolds into the minimal depth-first frontier covering it, and folds
// back to exactly the same interval (paper §3.4–3.5).
func ExampleUnfold() {
	p := flowshop.NewProblem(flowshop.Taillard(4, 2, 1), flowshop.BoundOneMachine, flowshop.PairsAll)
	nb := gridbb.NewNumbering(p)
	fmt.Printf("tree: %s, %s leaves\n", tree.Permutation{N: 4}.Name(), nb.LeafCount())

	// Unfold [5,19) of the 24-leaf tree.
	nodes := gridbb.Unfold(nb, intervalOf(5, 19))
	for _, n := range nodes {
		fmt.Printf("%v covers %v\n", n, nb.Range(n.Ranks))
	}
	back, _ := gridbb.Fold(nb, nodes)
	fmt.Printf("fold gives back %v\n", back)
	// Output:
	// tree: permutation(4), 24 leaves
	// <0.2.1> covers [5,6)
	// <1> covers [6,12)
	// <2> covers [12,18)
	// <3.0.0> covers [18,19)
	// fold gives back [5,19)
}

func intervalOf(a, b int64) gridbb.Interval {
	var iv gridbb.Interval
	_ = iv.UnmarshalText([]byte(fmt.Sprintf("%d %d", a, b)))
	return iv
}
