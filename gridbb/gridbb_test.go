package gridbb

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/flowshop"
	"repro/internal/knapsack"
	"repro/internal/tsp"
)

// TestSolveFlowshop: the public entry point solves a flowshop instance in
// parallel and proves the sequential optimum.
func TestSolveFlowshop(t *testing.T) {
	ins := flowshop.Taillard(12, 10, 5)
	factory := func() Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	want, _ := SolveSequential(factory(), Infinity)

	res, err := Solve(factory(), Options{Workers: 6, ProblemFactory: factory, UpdatePeriodNodes: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != want.Cost {
		t.Fatalf("parallel best %d, sequential %d", res.Best.Cost, want.Cost)
	}
	if res.Counters.WorkAllocations == 0 || res.Counters.WorkerCheckpoints == 0 {
		t.Fatalf("no protocol traffic recorded: %+v", res.Counters)
	}
}

// TestSolveWithInitialUpper: priming with the known optimum still proves it
// (the paper's run 2 starts from 3680 and proves 3679 — here the prime IS
// the optimum, so no improving leaf exists and the initial solution wins).
func TestSolveWithInitialUpper(t *testing.T) {
	ins := flowshop.Taillard(10, 6, 21)
	factory := func() Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	want, _ := SolveSequential(factory(), Infinity)
	perm, err := flowshop.PermutationOfPath(ins.Jobs, want.Path)
	if err != nil {
		t.Fatal(err)
	}
	path, err := flowshop.PathOfPermutation(ins.Jobs, perm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(factory(), Options{
		Workers: 3, ProblemFactory: factory,
		InitialUpper: want.Cost, InitialPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != want.Cost {
		t.Fatalf("primed resolution best %d, want %d", res.Best.Cost, want.Cost)
	}
}

// TestSolveRequiresFactory: multi-worker without a factory is rejected
// (Problem state machines are single-threaded).
func TestSolveRequiresFactory(t *testing.T) {
	p := knapsack.NewProblem(knapsack.Random(8, 1))
	if _, err := Solve(p, Options{Workers: 2}); err == nil {
		t.Fatal("expected an error without ProblemFactory")
	}
}

// TestSolveSingleWorkerNoFactory: one worker may reuse the given problem.
func TestSolveSingleWorkerNoFactory(t *testing.T) {
	ins := knapsack.Random(14, 3)
	want, _ := SolveSequential(knapsack.NewProblem(ins), Infinity)
	res, err := Solve(knapsack.NewProblem(ins), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != want.Cost {
		t.Fatalf("best %d, want %d", res.Best.Cost, want.Cost)
	}
}

// TestSolveWritesCheckpoints: with a checkpoint dir the farmer leaves a
// readable final snapshot recording the completed state.
func TestSolveWritesCheckpoints(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	ins := tsp.RandomEuclidean(8, 50, 2)
	factory := func() Problem { return tsp.NewProblem(ins) }
	res, err := Solve(factory(), Options{
		Workers: 2, ProblemFactory: factory,
		CheckpointDir: dir, CheckpointPeriod: time.Hour, // final snapshot only
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !store.Exists() {
		t.Fatal("no checkpoint written")
	}
	snap, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Intervals) != 0 {
		t.Fatalf("final snapshot still has %d intervals", len(snap.Intervals))
	}
	if snap.BestCost != res.Best.Cost {
		t.Fatalf("snapshot best %d, result best %d", snap.BestCost, res.Best.Cost)
	}
}

// TestFoldUnfoldFacade exercises the re-exported operators.
func TestFoldUnfoldFacade(t *testing.T) {
	p := knapsack.NewProblem(knapsack.Random(6, 9))
	nb := NewNumbering(p)
	iv := nb.RootRange()
	nodes := Unfold(nb, iv)
	back, err := Fold(nb, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(iv) {
		t.Fatalf("fold(unfold(root)) = %v, want %v", back, iv)
	}
}

// TestSolveP2PFacade: the decentralized entry point proves the same optimum
// as the farmer-worker one.
func TestSolveP2PFacade(t *testing.T) {
	ins := flowshop.Taillard(10, 6, 13)
	factory := func() Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	want, _ := SolveSequential(factory(), Infinity)
	res, err := SolveP2P(factory, P2POptions{Peers: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != want.Cost {
		t.Fatalf("p2p best %d, want %d", res.Best.Cost, want.Cost)
	}
}

// TestSolveMulticoreWorkers: the public Cores knob runs the intra-worker
// shard engine under the same farmer protocol and proves the same optimum.
func TestSolveMulticoreWorkers(t *testing.T) {
	ins := flowshop.Taillard(11, 6, 9)
	factory := func() Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	want, _ := SolveSequential(factory(), Infinity)
	res, err := Solve(factory(), Options{Workers: 2, Cores: 3, ProblemFactory: factory, UpdatePeriodNodes: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != want.Cost {
		t.Fatalf("multicore best %d, sequential %d", res.Best.Cost, want.Cost)
	}
	if _, err := Solve(factory(), Options{Workers: 1, Cores: 2}); err == nil {
		t.Fatal("Cores>1 without a factory should be rejected")
	}
}

// TestSolveTreeCoordination: the public Subtrees knob coordinates the
// workers through a 2-level farmer tree (DESIGN.md §9) and proves the same
// optimum, with the root aggregating the whole tree's statistics.
func TestSolveTreeCoordination(t *testing.T) {
	ins := flowshop.Taillard(11, 6, 9)
	factory := func() Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	want, _ := SolveSequential(factory(), Infinity)
	res, err := Solve(factory(), Options{
		Workers: 4, Subtrees: 2, ProblemFactory: factory, UpdatePeriodNodes: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != want.Cost {
		t.Fatalf("tree best %d, sequential %d", res.Best.Cost, want.Cost)
	}
	if !res.Best.Valid() {
		t.Fatal("tree optimum lost its leaf path on the way to the root")
	}
	// The root's counters must aggregate the whole tree exactly:
	// sub-farmers ship their fleets' exploration deltas with every fold,
	// and the terminal flush covers checkpoints that landed after the
	// final fold. In-process nothing is lost, so the root total equals
	// the sum of the workers' engine counters.
	var workerTotal int64
	for _, w := range res.PerWorker {
		workerTotal += w.Stats.Explored
	}
	if res.Counters.ExploredNodes != workerTotal {
		t.Fatalf("root counters aggregate %d explored nodes, workers explored %d — fleet statistics leaked between folds",
			res.Counters.ExploredNodes, workerTotal)
	}
}
