// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index):
//
//	experiments -fig 1      # weights per depth (permutation tree)
//	experiments -fig 2      # node numbers
//	experiments -fig 3      # node ranges
//	experiments -fig 4      # fold/unfold of an active list
//	experiments -fig 5      # B&B processes + coordinator snapshot
//	experiments -fig 6      # the national grid (same data as table 1)
//	experiments -fig 7      # processors over time (simulated)
//	experiments -table 1    # the computational pool
//	experiments -table 2    # execution statistics (simulated resolution)
//	experiments -table 3    # famous resolutions ranking
//	experiments -headline   # the Ta056 story: generator, bounds, optimum
//	experiments -all        # everything (figures 7/tables 2-3 in fast mode)
//
// Figures 7 and tables 2–3 run the grid simulator; pass -fast for a
// seconds-scale run or leave it off for the paper-scale (minutes) replay.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/flowshop"
	"repro/internal/gridsim"
	"repro/internal/interval"
	"repro/internal/transport"
	"repro/internal/tree"
	"repro/internal/worker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate (1..7)")
		table    = flag.Int("table", 0, "table to regenerate (1..3)")
		headline = flag.Bool("headline", false, "the Ta056 headline experiment")
		all      = flag.Bool("all", false, "everything")
		fast     = flag.Bool("fast", false, "fast simulation scenario for fig 7 / tables 2-3")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	ran := false
	run := func(cond bool, f func()) {
		if cond || *all {
			f()
			fmt.Println()
			ran = true
		}
	}
	run(*fig == 1, figure1)
	run(*fig == 2, figure2)
	run(*fig == 3, figure3)
	run(*fig == 4, figure4)
	run(*fig == 5, figure5)
	run(*fig == 6 || *table == 1, table1)
	run(*headline, headlineTa056)
	// The simulation serves figure 7 and tables 2–3 in one run.
	run(*fig == 7 || *table == 2 || *table == 3, func() { simulate(*fast || *all, *seed) })
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// figure1 reproduces Figure 1: the per-depth weights of a permutation tree
// (eq. 3: weight = (P-depth)!).
func figure1() {
	fmt.Println("=== Figure 1: weight of a node (permutation tree, 4 elements) ===")
	nb := core.NewNumbering(tree.Permutation{N: 4})
	fmt.Printf("%-8s %-12s %s\n", "depth", "branching", "weight (leaves below)")
	for d := 0; d <= nb.Depth(); d++ {
		br := "-"
		if d < nb.Depth() {
			br = fmt.Sprint(nb.Shape().Branching(d))
		}
		fmt.Printf("%-8d %-12s %s\n", d, br, nb.Weight(d))
	}
}

// figure2 reproduces Figure 2: node numbers (eq. 6) of a 3-element
// permutation tree, printed per level.
func figure2() {
	fmt.Println("=== Figure 2: node numbers (permutation tree, 3 elements) ===")
	printLevels(tree.Permutation{N: 3}, func(nb *core.Numbering, ranks []int) string {
		return nb.Number(ranks).String()
	})
}

// figure3 reproduces Figure 3: node ranges (eq. 7).
func figure3() {
	fmt.Println("=== Figure 3: node ranges (permutation tree, 3 elements) ===")
	printLevels(tree.Permutation{N: 3}, func(nb *core.Numbering, ranks []int) string {
		return nb.Range(ranks).String()
	})
}

// printLevels walks a small tree breadth-first and prints label(node) per
// level.
func printLevels(shape tree.Shape, label func(*core.Numbering, []int) string) {
	nb := core.NewNumbering(shape)
	level := [][]int{{}}
	for d := 0; d <= shape.Depth(); d++ {
		fmt.Printf("depth %d: ", d)
		var next [][]int
		for i, ranks := range level {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Print(label(nb, ranks))
			if d < shape.Depth() {
				for r := 0; r < shape.Branching(d); r++ {
					next = append(next, append(append([]int(nil), ranks...), r))
				}
			}
		}
		fmt.Println()
		level = next
	}
}

// figure4 reproduces Figure 4: an interval unfolds into the minimal active
// list and folds back.
func figure4() {
	fmt.Println("=== Figure 4: fold and unfold (permutation tree, 4 elements) ===")
	nb := core.NewNumbering(tree.Permutation{N: 4})
	iv := interval.FromInt64(5, 19)
	fmt.Printf("interval: %v of root range %v\n", iv, nb.RootRange())
	nodes := core.Unfold(nb, iv)
	fmt.Printf("unfold -> %d active nodes:\n", len(nodes))
	for _, n := range nodes {
		fmt.Printf("  %-12v range %v\n", n, nb.Range(n.Ranks))
	}
	back, err := core.FoldStrict(nb, nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fold   -> %v (round trip exact: %v)\n", back, back.Equal(iv))
}

// figure5 reproduces Figure 5: three B&B processes and a coordinator, with
// the INTERVALS set holding one interval per process plus one waiting.
func figure5() {
	fmt.Println("=== Figure 5: B&B processes and coordinator ===")
	ins := flowshop.Taillard(11, 5, 3)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	nb := core.NewNumbering(factory().Shape())
	f := farmer.New(nb.RootRange())
	var sessions []*worker.Session
	for i := 0; i < 3; i++ {
		s := worker.NewSession(worker.Config{
			ID:                transport.WorkerID(fmt.Sprintf("bb%d", i+1)),
			Power:             1,
			UpdatePeriodNodes: 50,
		}, f, factory())
		sessions = append(sessions, s)
	}
	// Interleave a little exploration so the intervals diverge, then a
	// mid-run failure leaves a fourth interval waiting for a process. The
	// budget must leave the resolution unfinished (the sequential proof
	// of this instance is ~4k nodes, and cross-process incumbent sharing
	// prunes harder than that): the figure is a snapshot of LIVE copies.
	for round := 0; round < 4; round++ {
		for _, s := range sessions {
			if _, _, err := s.Advance(60); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("INTERVALS (coordinator copies):")
	for _, rec := range f.IntervalsSnapshot() {
		fmt.Printf("  interval #%d: %v\n", rec.ID, rec.Interval)
	}
	best := f.Best()
	fmt.Printf("SOLUTION: cost %d\n", best.Cost)
	card, size := f.Size()
	fmt.Printf("cardinality %d, remaining size %s of %s\n", card, size, nb.LeafCount())
}

// table1 reproduces Table 1 / Figure 6: the computational pool.
func table1() {
	fmt.Println("=== Table 1 / Figure 6: the computational pool ===")
	pool := gridsim.Table1Pool()
	fmt.Printf("%-9s %-10s %-24s %s\n", "CPU", "GHz", "Domain", "No.")
	for _, s := range pool {
		fmt.Printf("%-9s %-10.2f %-24s %d\n", s.Model, s.GHz, s.Domain, s.Count)
	}
	fmt.Printf("%-45s%d (paper: %d)\n", "Total", gridsim.PoolSize(pool), gridsim.Table1Total)
	fmt.Printf("administrative domains: %d (paper: 9)\n", len(gridsim.PoolDomains(pool)))
}

// headlineTa056 replays the §5.3 headline at the scales this repository can
// reach: the bit-exact instance, the paper's printed schedule, heuristic
// bounds, and an exact resolution of a reduced prefix of the same data.
func headlineTa056() {
	fmt.Println("=== Headline: Ta056 (50 jobs x 20 machines) ===")
	ins := flowshop.Ta056()
	fmt.Printf("instance regenerated from Taillard seed %d\n", flowshop.Ta056TimeSeed)
	got := ins.Makespan(flowshop.Ta056PaperPermutation)
	fmt.Printf("paper's printed optimal schedule evaluates to %d (claimed optimum %d, previous best %d)\n",
		got, flowshop.Ta056Optimum, flowshop.Ta056PreviousBest)
	fmt.Println("  (the one-unit gap is a transcription artifact in the printed schedule; see EXPERIMENTS.md)")

	nehSeq, nehC := flowshop.NEH(ins)
	fmt.Printf("NEH constructive upper bound: %d\n", nehC)
	_ = nehSeq
	igPerm, igC := flowshop.IteratedGreedy(ins, flowshop.IGOptions{Iterations: 4000, DestructSize: 4, TemperatureFactor: 0.4, Seed: 1})
	fmt.Printf("iterated greedy (Ruiz-Stützle, 4000 iters): %d\n", igC)
	_ = igPerm

	p := flowshop.NewProblem(ins, flowshop.BoundCombined, flowshop.PairsFirstLast)
	p.Reset()
	fmt.Printf("root lower bound (combined 1-machine + Johnson 2-machine): %d\n", p.Bound(bb.Infinity))

	red, err := ins.Reduced(12, 8)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	sol, stats := bb.Solve(flowshop.NewProblem(red, flowshop.BoundOneMachine, flowshop.PairsAll), bb.Infinity)
	fmt.Printf("exact resolution of the %s prefix: optimum %d, %d nodes, %s\n",
		red.Name, sol.Cost, stats.Explored, time.Since(start).Round(time.Millisecond))
	nbFull := core.NewNumbering(tree.Permutation{N: 50})
	fmt.Printf("full Ta056 search space: %s leaves (interval arithmetic is exact at this scale)\n", nbFull.LeafCount())
}

// simulate runs the grid simulation serving Figure 7 and Tables 2–3.
func simulate(fast bool, seed int64) {
	full := flowshop.Ta056()
	ins, err := full.Reduced(14, 8)
	if err != nil {
		log.Fatal(err)
	}
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	seq, seqStats := bb.Solve(factory(), bb.Infinity)

	var cfg gridsim.Config
	if fast {
		cfg = gridsim.FastScenario(seed, seqStats.Explored*12/10, 3)
	} else {
		cfg = gridsim.PaperScenario(seed, seqStats.Explored*12/10, 25)
	}
	cfg.InitialUpper = seq.Cost + 1

	mode := "paper-scale"
	if fast {
		mode = "fast"
	}
	log.Printf("running the %s simulation (%s standing in for Ta056, %d processors)...",
		mode, ins.Name, gridsim.PoolSize(cfg.Pool))
	res, err := gridsim.New(cfg, factory).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Table 2: execution statistics (simulated; optimum %d%s) ===\n", res.Best.Cost,
		map[bool]string{true: ", matches sequential proof"}[res.Best.Cost == seq.Cost])
	fmt.Println(res.Table2.RenderComparison())
	fmt.Println("=== Table 3: famous exact resolutions ===")
	fmt.Println(gridsim.RenderTable3(gridsim.Table3(res.Table2.TotalCPUSeconds)))
	fmt.Println("=== Figure 7: evolution of the number of available processors ===")
	fmt.Println(gridsim.RenderTrace(res.Trace, 100, 12))
	avg, max := gridsim.TraceStats(res.Trace)
	fmt.Printf("trace: average %.0f, peak %d of %d (paper: 328 avg, 1195 peak of 1889)\n",
		avg, max, gridsim.PoolSize(cfg.Pool))
}
