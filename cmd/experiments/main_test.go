package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

// TestFigure1Output: the printed weight column is the paper's Figure 1.
func TestFigure1Output(t *testing.T) {
	out := captureStdout(t, figure1)
	for _, want := range []string{"24", "6", "2", "1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 1 output missing %q:\n%s", want, out)
		}
	}
}

// TestFigure2And3Output: numbering and ranges print every level.
func TestFigure2And3Output(t *testing.T) {
	out := captureStdout(t, figure2)
	if !strings.Contains(out, "depth 3: 0  1  2  3  4  5") {
		t.Fatalf("figure 2 leaf numbering wrong:\n%s", out)
	}
	out = captureStdout(t, figure3)
	if !strings.Contains(out, "[0,6)") || !strings.Contains(out, "[4,6)") {
		t.Fatalf("figure 3 ranges wrong:\n%s", out)
	}
}

// TestFigure4Output: the round trip reports exactness.
func TestFigure4Output(t *testing.T) {
	out := captureStdout(t, figure4)
	if !strings.Contains(out, "round trip exact: true") {
		t.Fatalf("figure 4 round trip failed:\n%s", out)
	}
}

// TestFigure5Output: the INTERVALS snapshot shows live work units.
func TestFigure5Output(t *testing.T) {
	out := captureStdout(t, figure5)
	if !strings.Contains(out, "INTERVALS") || !strings.Contains(out, "SOLUTION") {
		t.Fatalf("figure 5 output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "interval #") {
		t.Fatalf("no intervals listed:\n%s", out)
	}
}

// TestTable1Output: the pool totals match the paper.
func TestTable1Output(t *testing.T) {
	out := captureStdout(t, table1)
	if !strings.Contains(out, "1889 (paper: 1889)") {
		t.Fatalf("table 1 total wrong:\n%s", out)
	}
	if !strings.Contains(out, "administrative domains: 9") {
		t.Fatalf("table 1 domains wrong:\n%s", out)
	}
}

// TestSimulateFastOutput runs the fast simulation end to end through the
// experiment harness.
func TestSimulateFastOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full fast simulation")
	}
	out := captureStdout(t, func() { simulate(true, 1) })
	for _, want := range []string{"Table 2", "Table 3", "Figure 7", "Worker CPU exploitation", "matches sequential proof"} {
		if !strings.Contains(out, want) {
			t.Fatalf("simulation output missing %q:\n%s", want, out)
		}
	}
}
