package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/jobs"
)

func newTestTable(t *testing.T, dir string, maxActive int) *jobs.Table {
	t.Helper()
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return jobs.NewTable(jobs.Config{Store: store, MaxActive: maxActive, KeepAlive: true})
}

func decodeProgress(t *testing.T, rec *httptest.ResponseRecorder) jobs.Progress {
	t.Helper()
	var p jobs.Progress
	if err := json.NewDecoder(rec.Body).Decode(&p); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return p
}

// TestResumeSpecWithoutCheckpoint: a namespace holding only the spec
// sidecar — the job was submitted but jobd died before its first snapshot
// — resumes as a fresh running job instead of silently vanishing.
func TestResumeSpecWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "young"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := saveSpec(dir, "young", jobs.Spec{Domain: "knapsack", N: 12, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	tb := newTestTable(t, dir, 8)
	resumeAll(tb, dir)
	p, err := tb.Progress("young")
	if err != nil {
		t.Fatalf("spec-only job not resumed: %v", err)
	}
	if p.State != "running" {
		t.Fatalf("spec-only job is %s, want running", p.State)
	}
	if c := tb.Counters(); c.Resumed != 0 {
		t.Fatalf("Resumed = %d, want 0 (no checkpoint existed)", c.Resumed)
	}
}

// TestResumeQuarantinesCorruptJob: a corrupt checkpoint quarantines its
// own job and only its own job, and the HTTP API reports the state and
// the load error.
func TestResumeQuarantinesCorruptJob(t *testing.T) {
	dir := t.TempDir()
	// A healthy job: real checkpoint written through the real store.
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := store.Namespace("healthy")
	if err != nil {
		t.Fatal(err)
	}
	seed := jobs.NewTable(jobs.Config{Store: store})
	if err := seed.Submit("healthy", jobs.Spec{Domain: "knapsack", N: 12, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := seed.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !healthy.Exists() {
		t.Fatal("healthy namespace has no checkpoint")
	}
	if err := saveSpec(dir, "healthy", jobs.Spec{Domain: "knapsack", N: 12, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// A rotten job: both snapshot files present but garbage, no previous
	// generation to fall back to.
	if err := os.MkdirAll(filepath.Join(dir, "rotten"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"intervals.ckpt", "solution.ckpt"} {
		if err := os.WriteFile(filepath.Join(dir, "rotten", f), []byte("garbage\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := saveSpec(dir, "rotten", jobs.Spec{Domain: "knapsack", N: 12, Seed: 2}); err != nil {
		t.Fatal(err)
	}

	tb := newTestTable(t, dir, 8)
	resumeAll(tb, dir)
	a := &api{tb: tb, storeDir: dir}
	rec := httptest.NewRecorder()
	a.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/rotten", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /jobs/rotten: %d %s", rec.Code, rec.Body)
	}
	p := decodeProgress(t, rec)
	if p.State != "quarantined" {
		t.Fatalf("rotten job state %q, want quarantined", p.State)
	}
	if !strings.Contains(p.Error, "corrupt") {
		t.Fatalf("rotten job error %q does not name the corruption", p.Error)
	}
	rec = httptest.NewRecorder()
	a.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/healthy", nil))
	if p := decodeProgress(t, rec); p.State != "running" {
		t.Fatalf("healthy job state %q, want running", p.State)
	}
	if c := tb.Counters(); c.QuarantinedJobs != 1 || c.Resumed != 1 {
		t.Fatalf("counters %+v, want 1 quarantined / 1 resumed", c)
	}
}

// TestDeleteQueuedJob: DELETE of a job still waiting for a running slot
// cancels it cleanly through the API.
func TestDeleteQueuedJob(t *testing.T) {
	dir := t.TempDir()
	tb := newTestTable(t, dir, 1)
	a := &api{tb: tb, storeDir: dir}
	h := a.handler()
	for _, id := range []string{"first", "second"} {
		body := strings.NewReader(`{"id":"` + id + `","spec":{"domain":"knapsack","n":12,"seed":3}}`)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs", body))
		if rec.Code != http.StatusCreated {
			t.Fatalf("POST %s: %d %s", id, rec.Code, rec.Body)
		}
	}
	if p, _ := tb.Progress("second"); p.State != "queued" {
		t.Fatalf("second job is %s, want queued (MaxActive=1)", p.State)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/second", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE queued job: %d %s", rec.Code, rec.Body)
	}
	if p := decodeProgress(t, rec); p.State != "cancelled" {
		t.Fatalf("deleted queued job is %s, want cancelled", p.State)
	}
	// The running job is untouched, and deleting it also works.
	if p, _ := tb.Progress("first"); p.State != "running" {
		t.Fatalf("first job is %s, want running", p.State)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/second", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("double delete: %d, want conflict", rec.Code)
	}
}
