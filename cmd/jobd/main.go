// Command jobd runs the multi-tenant job service: one shared grid of
// pull-model workers (cmd/worker for single-job fleets, or multi-job
// sessions) serving many concurrent B&B resolutions through a keyed job
// table with fair-share scheduling (internal/jobs).
//
// Workers connect over the same TCP protocol cmd/farmer speaks — jobd is
// a drop-in coordinator. Operators drive the service over a small HTTP
// JSON API:
//
//	POST   /jobs        {"id":"ta21x5","spec":{"domain":"flowshop","jobs":21,"machines":5,"seed":3}}
//	GET    /jobs        → every job's live progress
//	GET    /jobs/{id}   → one job's progress (frontier %, incumbent, fleet power)
//	DELETE /jobs/{id}   → cancel (checkpoint stays; resubmit resumes)
//
// Every job checkpoints under its own namespace of -store, and its spec
// is persisted next to the checkpoint, so a restarted jobd resubmits and
// resumes every unfinished job on its own.
//
// Usage:
//
//	jobd -addr :4321 -http :8080 -store jobd-store &
//	worker -addr host:4321 &   # as many as you like, anywhere
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/jobs"
	"repro/internal/transport"
)

// specFile is the per-namespace sidecar making a job's checkpoint
// self-describing: the two §4.1 files say where the resolution is, the
// spec says which tree it is of.
const specFile = "spec.json"

func saveSpec(storeDir, id string, spec jobs.Spec) error {
	data, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(storeDir, id, specFile), data, 0o644)
}

// resumeAll resubmits every namespace directory that has a spec sidecar —
// the sidecar, not the checkpoint, is the source of truth for "this job
// existed". A namespace without snapshot files (submitted but never
// checkpointed) restarts from scratch; one whose snapshot is corrupt
// beyond fallback ends Quarantined in the table, queryable over the API
// with its load error, while every other job resumes normally.
func resumeAll(tb *jobs.Table, storeDir string) {
	entries, err := os.ReadDir(storeDir)
	if err != nil {
		log.Printf("resume scan: %v", err)
		return
	}
	for _, e := range entries {
		id := e.Name()
		if !e.IsDir() || !checkpoint.ValidNamespace(id) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(storeDir, id, specFile))
		if err != nil {
			if !os.IsNotExist(err) {
				log.Printf("resume %s: spec sidecar unreadable: %v", id, err)
			}
			continue
		}
		var spec jobs.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			log.Printf("resume %s: bad spec sidecar: %v", id, err)
			continue
		}
		if err := tb.Submit(id, spec); err != nil {
			if errors.Is(err, checkpoint.ErrCorrupt) {
				log.Printf("resume %s: checkpoint corrupt, job quarantined: %v", id, err)
			} else {
				log.Printf("resume %s: %v", id, err)
			}
			continue
		}
		log.Printf("resumed job %s (%s)", id, spec.Domain)
	}
}

// api is the HTTP control surface over the table.
type api struct {
	tb       *jobs.Table
	storeDir string
	token    string
}

func (a *api) auth(w http.ResponseWriter, r *http.Request) bool {
	if a.token == "" || r.Header.Get("Authorization") == "Bearer "+a.token {
		return true
	}
	http.Error(w, "unauthorized", http.StatusUnauthorized)
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (a *api) submit(w http.ResponseWriter, r *http.Request) {
	if !a.auth(w, r) {
		return
	}
	var req struct {
		ID   string    `json:"id"`
		Spec jobs.Spec `json:"spec"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := a.tb.Submit(req.ID, req.Spec); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if a.storeDir != "" {
		if err := saveSpec(a.storeDir, req.ID, req.Spec); err != nil {
			log.Printf("job %s: persist spec: %v", req.ID, err)
		}
	}
	p, err := a.tb.Progress(req.ID)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, p)
}

func (a *api) list(w http.ResponseWriter, r *http.Request) {
	if !a.auth(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, a.tb.List())
}

func (a *api) get(w http.ResponseWriter, r *http.Request) {
	if !a.auth(w, r) {
		return
	}
	p, err := a.tb.Progress(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (a *api) cancel(w http.ResponseWriter, r *http.Request) {
	if !a.auth(w, r) {
		return
	}
	id := r.PathValue("id")
	if err := a.tb.Cancel(id); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	p, err := a.tb.Progress(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (a *api) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", a.submit)
	mux.HandleFunc("GET /jobs", a.list)
	mux.HandleFunc("GET /jobs/{id}", a.get)
	mux.HandleFunc("DELETE /jobs/{id}", a.cancel)
	return mux
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("jobd: ")
	var (
		addr     = flag.String("addr", ":4321", "worker RPC listen address")
		httpAddr = flag.String("http", ":8080", "HTTP API listen address (empty: disabled)")
		storeDir = flag.String("store", "jobd-store", "checkpoint store directory (one namespace per job)")
		ckptSecs = flag.Int("checkpoint-period", 1800, "snapshot period in seconds (paper: 30 minutes)")
		leaseTTL = flag.Int("lease-ttl", 300, "seconds of silence before a worker is presumed dead")
		statusIv = flag.Int("status-period", 10, "seconds between status lines")

		maxActive  = flag.Int("max-active", 8, "concurrently running jobs")
		maxQueued  = flag.Int("max-queued", 64, "admission queue length")
		maxPerUser = flag.Int("max-per-user", 0, "live jobs per owner (0: unlimited)")

		// Hostile-WAN hardening (DESIGN.md §10), as in cmd/farmer.
		readTimeout = flag.Int("read-timeout", 300, "seconds a connection may stay silent before eviction (0: no deadline)")
		maxConns    = flag.Int("max-conns", 0, "max simultaneous connections, evicting the most idle at the cap (0: unlimited)")
		maxMsg      = flag.Int64("max-msg-bytes", transport.DefaultMaxMessageBytes, "per-message byte limit (negative: unlimited)")
		tlsCert     = flag.String("tls-cert", "", "server certificate PEM (with -tls-key enables TLS)")
		tlsKey      = flag.String("tls-key", "", "server key PEM")
		tlsClientCA = flag.String("tls-client-ca", "", "require client certificates signed by this CA (certificate auth mode)")
		authToken   = flag.String("auth-token", "", "shared token workers must present (token auth mode)")
		httpToken   = flag.String("http-token", "", "bearer token the HTTP API requires (empty: open)")
	)
	flag.Parse()

	store, err := checkpoint.NewStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	tb := jobs.NewTable(jobs.Config{
		MaxActive:  *maxActive,
		MaxQueued:  *maxQueued,
		MaxPerUser: *maxPerUser,
		Store:      store,
		LeaseTTL:   time.Duration(*leaseTTL) * time.Second,
		KeepAlive:  true, // a service waits for the next submission
	})
	resumeAll(tb, *storeDir)

	so := transport.ServerOptions{
		ReadTimeout:     time.Duration(*readTimeout) * time.Second,
		MaxConns:        *maxConns,
		MaxMessageBytes: *maxMsg,
		Token:           *authToken,
		// No WireRef: job roots differ, so intervals ride absolute —
		// correct for every job, just without delta compression.
	}
	if *tlsCert != "" || *tlsKey != "" {
		if so.TLS, err = transport.LoadServerTLS(*tlsCert, *tlsKey, *tlsClientCA); err != nil {
			log.Fatal(err)
		}
		log.Printf("TLS enabled (client CA: %v, token: %v)", *tlsClientCA != "", *authToken != "")
	}
	srv, err := transport.ServeWith(tb, *addr, so)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("serving workers on %s", srv.Addr())

	if *httpAddr != "" {
		a := &api{tb: tb, storeDir: *storeDir, token: *httpToken}
		go func() {
			log.Printf("HTTP API on %s", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, a.handler()); err != nil &&
				!errors.Is(err, http.ErrServerClosed) {
				log.Fatal(err)
			}
		}()
	}

	ckptTicker := time.NewTicker(time.Duration(*ckptSecs) * time.Second)
	defer ckptTicker.Stop()
	statusTicker := time.NewTicker(time.Duration(*statusIv) * time.Second)
	defer statusTicker.Stop()
	for {
		select {
		case <-ckptTicker.C:
			if err := tb.Checkpoint(); err != nil {
				log.Printf("checkpoint: %v", err)
			}
		case <-statusTicker.C:
			for _, p := range tb.List() {
				if p.State != "running" {
					continue
				}
				best := "∞"
				if p.BestCost != bb.Infinity {
					best = fmt.Sprint(p.BestCost)
				}
				log.Printf("job %-20s %6.2f%% explored, %d intervals, fleet %d, best %s",
					p.ID, p.FrontierPct, p.Intervals, p.FleetPower, best)
			}
		}
	}
}
