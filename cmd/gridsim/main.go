// Command gridsim replays the paper's experiment on the simulated national
// grid: the Table 1 pool of 1889 processors across 9 administrative
// domains, a Figure 7-style availability profile, cycle-stealing churn and
// hard failures — solving a reduced Taillard instance that plays the role
// of Ta056 at the paper's 25-day scale (see DESIGN.md for the
// substitution). It prints the Table 2 statistics block next to the
// paper's values, the Table 3 ranking, and the Figure 7 trace.
//
// Usage:
//
//	gridsim                       # paper-scale defaults (takes ~2 minutes)
//	gridsim -fast                 # small pool, seconds
//	gridsim -jobs 13 -machines 8 -days 10 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/bb"
	"repro/internal/flowshop"
	"repro/internal/gridsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridsim: ")
	var (
		instance = flag.String("instance", "ta056", "Taillard instance to reduce")
		jobs     = flag.Int("jobs", 14, "reduced job count")
		machines = flag.Int("machines", 8, "reduced machine count")
		days     = flag.Float64("days", 25, "target virtual wall-clock, days")
		seed     = flag.Int64("seed", 1, "simulation seed")
		fast     = flag.Bool("fast", false, "small pool, short day: finishes in seconds")
		prime    = flag.Bool("prime", true, "prime SOLUTION like the paper's run 2 (best known + 1)")
		ckptDir  = flag.String("checkpoint-dir", "", "write real farmer snapshots here")
		traceCSV = flag.String("trace-csv", "", "dump the Figure 7 series (seconds,active) to this CSV file")
		subtrees = flag.Int("subtrees", 0, "coordinate through a 2-level farmer tree of this many sub-farmers (0: the paper's flat farmer)")
	)
	flag.Parse()

	full, err := flowshop.TaillardNamed(*instance)
	if err != nil {
		log.Fatal(err)
	}
	ins, err := full.Reduced(*jobs, *machines)
	if err != nil {
		log.Fatal(err)
	}
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	log.Printf("instance %s standing in for %s", ins, full)

	// Measure the sequential workload once: it calibrates the virtual
	// exploration rate and gives the run-2 initial bound.
	log.Printf("measuring sequential workload...")
	seqStart := time.Now()
	seq, seqStats := bb.Solve(factory(), bb.Infinity)
	log.Printf("sequential optimum %d, %d nodes (%s)", seq.Cost, seqStats.Explored, time.Since(seqStart).Round(time.Millisecond))

	var cfg gridsim.Config
	if *fast {
		cfg = gridsim.FastScenario(*seed, seqStats.Explored*12/10, *days/5)
	} else {
		cfg = gridsim.PaperScenario(*seed, seqStats.Explored*12/10, *days)
	}
	if *prime {
		cfg.InitialUpper = seq.Cost + 1
	}
	cfg.CheckpointDir = *ckptDir
	cfg.Subtrees = *subtrees

	log.Printf("simulating on %d processors in %d domains...",
		gridsim.PoolSize(cfg.Pool), len(gridsim.PoolDomains(cfg.Pool)))
	start := time.Now()
	res, err := gridsim.New(cfg, factory).Run()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Finished {
		log.Fatalf("simulation hit MaxTicks after %d ticks", res.Ticks)
	}
	log.Printf("simulation finished in %s real time (%d ticks)", time.Since(start).Round(time.Millisecond), res.Ticks)

	fmt.Printf("\noptimal makespan: %d", res.Best.Cost)
	if res.Best.Cost == seq.Cost {
		fmt.Printf(" (matches the sequential proof)")
	}
	fmt.Println()
	fmt.Printf("churn: %d joins, %d graceful leaves, %d crashes\n\n", res.Joins, res.Leaves, res.Crashes)

	fmt.Println("=== Table 2: execution statistics ===")
	fmt.Println(res.Table2.RenderComparison())

	fmt.Println("=== Table 3: famous exact resolutions ===")
	fmt.Println(gridsim.RenderTable3(gridsim.Table3(res.Table2.TotalCPUSeconds)))

	fmt.Println("=== Figure 7: processors over time ===")
	fmt.Println(gridsim.RenderTrace(res.Trace, 100, 12))
	avg, max := gridsim.TraceStats(res.Trace)
	fmt.Printf("trace: average %.0f, peak %d of %d (paper: 328 avg, 1195 peak of 1889)\n",
		avg, max, gridsim.PoolSize(cfg.Pool))

	if *traceCSV != "" {
		if err := writeTraceCSV(*traceCSV, res.Trace); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d trace points to %s", len(res.Trace), *traceCSV)
	}
}

// writeTraceCSV dumps the availability series for external plotting.
func writeTraceCSV(path string, trace []gridsim.TracePoint) error {
	var b strings.Builder
	b.WriteString("seconds,active\n")
	for _, p := range trace {
		fmt.Fprintf(&b, "%.0f,%d\n", p.TimeSeconds, p.Active)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
