// Command solve runs the grid-enabled Branch and Bound on a flowshop,
// TSP or knapsack instance, in-process, with any number of workers —
// the quickest way to watch the paper's machinery prove an optimum.
//
// Usage:
//
//	solve -problem flowshop -jobs 12 -machines 10 -seed 5 -workers 8
//	solve -problem flowshop -instance ta056 -reduce-jobs 13 -reduce-machines 8
//	solve -problem tsp -cities 12 -workers 4
//	solve -problem knapsack -items 24
//	solve -problem flowshop -jobs 12 -machines 6 -sequential   # baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/gridbb"
	"repro/internal/flowshop"
	"repro/internal/knapsack"
	"repro/internal/qap"
	"repro/internal/tsp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("solve: ")
	var (
		problem    = flag.String("problem", "flowshop", "problem domain: flowshop, tsp, qap, knapsack")
		workers    = flag.Int("workers", 4, "number of in-process workers")
		sequential = flag.Bool("sequential", false, "run the single-process baseline instead")
		p2pMode    = flag.Bool("p2p", false, "use the decentralized peer-to-peer runtime (no farmer)")
		bound      = flag.String("bound", "one", "flowshop bound: one, two, combined")
		useNEH     = flag.Bool("neh", true, "prime the flowshop upper bound with NEH")

		instance   = flag.String("instance", "", "published Taillard instance (flowshop)")
		redJobs    = flag.Int("reduce-jobs", 0, "reduce the named instance to this many jobs")
		redMach    = flag.Int("reduce-machines", 0, "reduce the named instance to this many machines")
		jobs       = flag.Int("jobs", 10, "jobs (flowshop)")
		machines   = flag.Int("machines", 5, "machines (flowshop)")
		seed       = flag.Int64("seed", 1, "instance seed")
		cities     = flag.Int("cities", 10, "cities (tsp)")
		facilities = flag.Int("facilities", 9, "facilities (qap)")
		items      = flag.Int("items", 20, "items (knapsack)")
	)
	flag.Parse()

	var (
		factory func() gridbb.Problem
		decode  func(path []int) string
		upper   = gridbb.Infinity
	)
	switch *problem {
	case "flowshop":
		ins := flowshopInstance(*instance, *redJobs, *redMach, *jobs, *machines, *seed)
		kind := flowshop.BoundOneMachine
		switch *bound {
		case "one":
		case "two":
			kind = flowshop.BoundTwoMachine
		case "combined":
			kind = flowshop.BoundCombined
		default:
			log.Fatalf("unknown bound %q", *bound)
		}
		if *useNEH {
			_, cmax := flowshop.NEH(ins)
			upper = cmax + 1 // "+1" keeps the NEH schedule itself provable
			fmt.Printf("NEH upper bound: %d\n", cmax)
		}
		factory = func() gridbb.Problem { return flowshop.NewProblem(ins, kind, flowshop.PairsAll) }
		decode = func(path []int) string {
			perm, err := flowshop.PermutationOfPath(ins.Jobs, path)
			if err != nil {
				return fmt.Sprint(err)
			}
			return fmt.Sprint(perm)
		}
		fmt.Printf("instance: %s\n", ins)
	case "tsp":
		ins := tsp.RandomEuclidean(*cities, 1000, *seed)
		factory = func() gridbb.Problem { return tsp.NewProblem(ins) }
		decode = func(path []int) string {
			tour, err := tsp.TourOfPath(ins.N, path)
			if err != nil {
				return fmt.Sprint(err)
			}
			return fmt.Sprint(append([]int{0}, tour...))
		}
		fmt.Printf("instance: %s\n", ins.Name)
	case "qap":
		ins := qap.Random(*facilities, 20, *seed)
		factory = func() gridbb.Problem { return qap.NewProblem(ins) }
		decode = func(path []int) string {
			loc, err := qap.AssignmentOfPath(ins.N, path)
			if err != nil {
				return fmt.Sprint(err)
			}
			return fmt.Sprint(loc)
		}
		fmt.Printf("instance: %s\n", ins.Name)
	case "knapsack":
		ins := knapsack.Random(*items, *seed)
		factory = func() gridbb.Problem { return knapsack.NewProblem(ins) }
		decode = func(path []int) string { return knapsack.NewProblem(ins).DecodePath(path) }
		fmt.Printf("instance: %s\n", ins.Name)
	default:
		log.Fatalf("unknown problem %q", *problem)
	}

	if *sequential {
		start := time.Now()
		sol, stats := gridbb.SolveSequential(factory(), upper)
		report(sol, decode, time.Since(start))
		fmt.Printf("explored %d nodes, pruned %d subtrees, %d leaves\n",
			stats.Explored, stats.Pruned, stats.Leaves)
		return
	}
	if *p2pMode {
		start := time.Now()
		res, err := gridbb.SolveP2P(factory, gridbb.P2POptions{Peers: *workers, InitialUpper: upper, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		report(res.Best, decode, time.Since(start))
		fmt.Printf("peers %d | steals %d/%d | token rounds %d | explored %d nodes\n",
			*workers, res.Steals, res.StealAttempts, res.TokenRounds, res.Stats.Explored)
		return
	}

	res, err := gridbb.Solve(factory(), gridbb.Options{
		Workers:        *workers,
		ProblemFactory: factory,
		InitialUpper:   upper,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res.Best, decode, res.Elapsed)
	c := res.Counters
	fmt.Printf("workers %d | allocations %d | checkpoints %d | solutions %d (%d improving)\n",
		*workers, c.WorkAllocations, c.WorkerCheckpoints, c.SolutionReports, c.SolutionImprovements)
	fmt.Printf("explored %d nodes | redundancy %.3f%%\n", c.ExploredNodes, 100*res.Redundancy.Rate())
}

func flowshopInstance(name string, redJobs, redMach, jobs, machines int, seed int64) *flowshop.Instance {
	if name == "" {
		return flowshop.Taillard(jobs, machines, seed)
	}
	ins, err := flowshop.TaillardNamed(name)
	if err != nil {
		log.Fatal(err)
	}
	if redJobs > 0 || redMach > 0 {
		if redJobs == 0 {
			redJobs = ins.Jobs
		}
		if redMach == 0 {
			redMach = ins.Machines
		}
		ins, err = ins.Reduced(redJobs, redMach)
		if err != nil {
			log.Fatal(err)
		}
	}
	return ins
}

func report(sol gridbb.Solution, decode func([]int) string, elapsed time.Duration) {
	if !sol.Valid() {
		fmt.Println("no solution improves the initial upper bound (the bound is optimal)")
		os.Exit(0)
	}
	fmt.Printf("optimal cost: %d (proof of optimality by exhaustion)\n", sol.Cost)
	fmt.Printf("solution: %s\n", decode(sol.Path))
	fmt.Printf("elapsed: %s\n", elapsed.Round(time.Millisecond))
}
