package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFarmerWorkerBinaries is the end-to-end deployment test: it builds the
// real farmer and worker binaries, runs them as separate OS processes
// talking TCP, kills a worker mid-run (the §4.1 failure scenario), and
// checks that the farmer still reports the proven optimum.
func TestFarmerWorkerBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	dir := t.TempDir()
	farmerBin := filepath.Join(dir, "farmer")
	workerBin := filepath.Join(dir, "worker")
	for _, b := range []struct{ out, pkg string }{
		{farmerBin, "repro/cmd/farmer"},
		{workerBin, "repro/cmd/worker"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}

	// A 11x6 reduction solves in a couple of seconds with two worker
	// processes while leaving room to kill one mid-run.
	args := []string{
		"-instance", "ta056", "-reduce-jobs", "11", "-reduce-machines", "6",
	}
	var farmerOut bytes.Buffer
	// A fixed high port keeps the worker processes simple; the test fails
	// loudly if it is taken.
	farmer := exec.Command(farmerBin, append([]string{
		"-addr", "127.0.0.1:43219",
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-lease-ttl", "2",
		"-status-period", "1",
	}, args...)...)
	farmer.Stdout = &farmerOut
	farmer.Stderr = &farmerOut
	if err := farmer.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if farmer.Process != nil {
			farmer.Process.Kill()
			farmer.Wait()
		}
	}()
	time.Sleep(500 * time.Millisecond) // let it bind

	workerArgs := append([]string{"-addr", "127.0.0.1:43219", "-update-nodes", "2000"}, args...)
	w1 := exec.Command(workerBin, append(workerArgs, "-name", "w1")...)
	w1.Stdout = os.Stderr
	w1.Stderr = os.Stderr
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill w1 shortly after it starts: its interval must be recovered.
	go func() {
		time.Sleep(700 * time.Millisecond)
		w1.Process.Kill()
		w1.Wait()
	}()

	w2 := exec.Command(workerBin, append(workerArgs, "-name", "w2", "-procs", "2")...)
	w2.Stdout = os.Stderr
	w2.Stderr = os.Stderr
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if w2.Process != nil {
			w2.Process.Kill()
		}
	}()

	// Wait for the farmer to declare completion (it exits by itself).
	done := make(chan error, 1)
	go func() { done <- farmer.Wait() }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatalf("farmer did not finish; output so far:\n%s", farmerOut.String())
	}
	w2.Wait()

	out := farmerOut.String()
	if !strings.Contains(out, "RESOLUTION COMPLETE") {
		t.Fatalf("no completion banner in farmer output:\n%s", out)
	}
	if !strings.Contains(out, "optimal makespan: 842") {
		// 842 is the sequential optimum of ta056 reduced to 11x6,
		// asserted independently in TestReducedOptimumOracle.
		t.Fatalf("unexpected optimum in farmer output:\n%s", out)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// cmd/farmer -> repo root is two levels up.
	return filepath.Dir(filepath.Dir(dir))
}
