package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bb"
	"repro/internal/flowshop"
	"repro/internal/harness"
)

// reducedTa056 is the 11x6 reduction of the paper's instance; its optimum
// (842) is asserted independently in TestReducedOptimumOracle.
func reducedTa056(t *testing.T) *flowshop.Instance {
	t.Helper()
	ins, err := flowshop.TaillardNamed("ta056")
	if err != nil {
		t.Fatal(err)
	}
	if ins, err = ins.Reduced(11, 6); err != nil {
		t.Fatal(err)
	}
	return ins
}

// TestFarmerRecoveryDeterministic is the §4.1 fault-tolerance story the old
// process-level test probed with wall-clock sleeps and hoped-for kill
// timing: here the same protocol code runs under the deterministic chaos
// harness — seeded message loss, a mid-run worker crash with rejoin, a
// farmer restart from its checkpoint files — and the run is replayed to the
// byte. The optimum must still be the independently asserted 842.
func TestFarmerRecoveryDeterministic(t *testing.T) {
	ins := reducedTa056(t)
	sc := harness.Scenario{
		Name: "farmer-binary-recovery",
		Seed: 6,
		Factory: func() bb.Problem {
			return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
		},
		Workers:           3,
		UpdatePeriodNodes: 256,
		TickBudget:        500,
		LeaseTTLTicks:     2,
		CheckpointEvery:   3,
		FarmerRestarts:    []int{6},
		DropReplyPct:      5,
		Kills:             []harness.KillEvent{{Tick: 4, Slot: 1, RejoinAfter: 3}},
	}
	rep, err := harness.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("VIOLATION: %s", v)
	}
	if !rep.Finished {
		t.Fatalf("resolution did not finish in %d ticks", rep.Ticks)
	}
	if rep.Best.Cost != 842 {
		t.Fatalf("optimal makespan %d, want 842", rep.Best.Cost)
	}
	if rep.Kills == 0 || rep.Restarts != 1 {
		t.Fatalf("fault schedule did not fire: kills=%d restarts=%d (ticks=%d)", rep.Kills, rep.Restarts, rep.Ticks)
	}
	again, err := harness.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Trace) != len(rep.Trace) {
		t.Fatalf("replay diverged: %d vs %d events", len(again.Trace), len(rep.Trace))
	}
	for i := range rep.Trace {
		if rep.Trace[i] != again.Trace[i] {
			t.Fatalf("replay diverged at event %d:\n  %s\n  %s", i, rep.Trace[i], again.Trace[i])
		}
	}
}

// syncBuffer collects subprocess output from its writer goroutine while the
// test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestFarmerWorkerBinaries is the deployment smoke test: the real farmer
// and worker binaries as separate OS processes talking TCP. The farmer
// binds port 0 and the test reads the chosen address from its log (the old
// fixed high port collided with whatever else ran on the machine); one
// worker is killed mid-run — whether the kill lands before or after its
// intervals complete, the farmer must still prove the optimum. The
// protocol-level recovery guarantees are asserted deterministically in
// TestFarmerRecoveryDeterministic; this test only proves the binaries wire
// up.
func TestFarmerWorkerBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	dir := t.TempDir()
	farmerBin := filepath.Join(dir, "farmer")
	workerBin := filepath.Join(dir, "worker")
	for _, b := range []struct{ out, pkg string }{
		{farmerBin, "repro/cmd/farmer"},
		{workerBin, "repro/cmd/worker"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}

	args := []string{
		"-instance", "ta056", "-reduce-jobs", "11", "-reduce-machines", "6",
	}
	farmerOut := &syncBuffer{}
	farmer := exec.Command(farmerBin, append([]string{
		"-addr", "127.0.0.1:0",
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-lease-ttl", "2",
		"-status-period", "1",
	}, args...)...)
	farmer.Stdout = farmerOut
	farmer.Stderr = farmerOut
	if err := farmer.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if farmer.Process != nil {
			farmer.Process.Kill()
			farmer.Wait()
		}
	}()

	// The farmer logs "serving on <addr>" once bound; poll instead of
	// sleeping a hopeful fixed delay.
	addrRe := regexp.MustCompile(`serving on (\S+)`)
	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(farmerOut.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("farmer never bound; output:\n%s", farmerOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	workerArgs := append([]string{"-addr", addr, "-update-nodes", "2000"}, args...)
	w1 := exec.Command(workerBin, append(workerArgs, "-name", "w1")...)
	w1.Stdout = os.Stderr
	w1.Stderr = os.Stderr
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill w1 shortly after it starts; the lease mechanism recovers its
	// interval if the kill lands mid-work.
	go func() {
		time.Sleep(700 * time.Millisecond)
		w1.Process.Kill()
		w1.Wait()
	}()

	w2 := exec.Command(workerBin, append(workerArgs, "-name", "w2", "-procs", "2")...)
	w2.Stdout = os.Stderr
	w2.Stderr = os.Stderr
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if w2.Process != nil {
			w2.Process.Kill()
		}
	}()

	// Wait for the farmer to declare completion (it exits by itself).
	done := make(chan error, 1)
	go func() { done <- farmer.Wait() }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatalf("farmer did not finish; output so far:\n%s", farmerOut.String())
	}
	w2.Wait()

	out := farmerOut.String()
	if !strings.Contains(out, "RESOLUTION COMPLETE") {
		t.Fatalf("no completion banner in farmer output:\n%s", out)
	}
	if !strings.Contains(out, "optimal makespan: 842") {
		// 842 is the sequential optimum of ta056 reduced to 11x6,
		// asserted independently in TestReducedOptimumOracle.
		t.Fatalf("unexpected optimum in farmer output:\n%s", out)
	}
}

// TestTreeBinaries is the 3-tier deployment smoke test: root farmer,
// sub-farmer and workers as separate OS processes over TCP. The workers
// talk only to the sub-farmer; the root sees one "worker" (the sub-farmer)
// and must still print the proven optimum. Note what the sub-farmer is NOT
// given: any instance configuration — the mid tier is pure interval
// algebra.
func TestTreeBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	dir := t.TempDir()
	farmerBin := filepath.Join(dir, "farmer")
	subBin := filepath.Join(dir, "subfarmer")
	workerBin := filepath.Join(dir, "worker")
	for _, b := range []struct{ out, pkg string }{
		{farmerBin, "repro/cmd/farmer"},
		{subBin, "repro/cmd/subfarmer"},
		{workerBin, "repro/cmd/worker"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}

	args := []string{
		"-instance", "ta056", "-reduce-jobs", "11", "-reduce-machines", "6",
	}
	farmerOut := &syncBuffer{}
	farmer := exec.Command(farmerBin, append([]string{
		"-addr", "127.0.0.1:0",
		"-checkpoint-dir", filepath.Join(dir, "root-ckpt"),
		"-lease-ttl", "5",
		"-status-period", "1",
	}, args...)...)
	farmer.Stdout = farmerOut
	farmer.Stderr = farmerOut
	if err := farmer.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if farmer.Process != nil {
			farmer.Process.Kill()
			farmer.Wait()
		}
	}()
	rootAddr := awaitAddr(t, farmerOut, regexp.MustCompile(`serving on (\S+)`))

	subOut := &syncBuffer{}
	sub := exec.Command(subBin,
		"-root", rootAddr,
		"-addr", "127.0.0.1:0",
		"-checkpoint-dir", filepath.Join(dir, "sub-ckpt"),
		"-update-period", "1",
		"-lease-ttl", "3",
		"-status-period", "1",
	)
	sub.Stdout = subOut
	sub.Stderr = subOut
	if err := sub.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if sub.Process != nil {
			sub.Process.Kill()
			sub.Wait()
		}
	}()
	subAddr := awaitAddr(t, subOut, regexp.MustCompile(`serving subtree .* on (\S+),`))

	w := exec.Command(workerBin, append([]string{
		"-addr", subAddr, "-update-nodes", "2000", "-procs", "2", "-name", "tw",
	}, args...)...)
	w.Stdout = os.Stderr
	w.Stderr = os.Stderr
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if w.Process != nil {
			w.Process.Kill()
		}
	}()

	done := make(chan error, 1)
	go func() { done <- farmer.Wait() }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatalf("farmer did not finish; farmer output:\n%s\nsubfarmer output:\n%s", farmerOut.String(), subOut.String())
	}
	w.Wait()

	out := farmerOut.String()
	if !strings.Contains(out, "optimal makespan: 842") {
		t.Fatalf("unexpected optimum in farmer output:\n%s\nsubfarmer output:\n%s", out, subOut.String())
	}
}

// awaitAddr polls a process's log for its bound address.
func awaitAddr(t *testing.T, buf *syncBuffer, re *regexp.Regexp) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("address never appeared; output:\n%s", buf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// cmd/farmer -> repo root is two levels up.
	return filepath.Dir(filepath.Dir(dir))
}
