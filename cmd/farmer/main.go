// Command farmer runs the coordinator of a multi-process grid resolution
// over TCP: it owns INTERVALS and SOLUTION, serves pull-model workers
// (cmd/worker), checkpoints to two files, and prints the proven optimum
// when INTERVALS empties. If a checkpoint exists in -checkpoint-dir the
// farmer resumes from it — the paper's farmer fault tolerance (§4.1).
//
// Usage:
//
//	farmer -addr :4321 -instance ta056 -reduce-jobs 13 -reduce-machines 8 &
//	worker -addr host:4321 &   # as many as you like, anywhere
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/flowshop"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("farmer: ")
	var (
		addr     = flag.String("addr", ":4321", "listen address")
		instance = flag.String("instance", "ta056", "Taillard instance")
		redJobs  = flag.Int("reduce-jobs", 0, "reduce to this many jobs")
		redMach  = flag.Int("reduce-machines", 0, "reduce to this many machines")
		ckptDir  = flag.String("checkpoint-dir", "farmer-checkpoints", "two-file snapshot directory")
		ckptSecs = flag.Int("checkpoint-period", 1800, "snapshot period in seconds (paper: 30 minutes)")
		leaseTTL = flag.Int("lease-ttl", 300, "seconds of silence before a worker is presumed dead")
		useNEH   = flag.Bool("neh", true, "prime SOLUTION with the NEH heuristic")
		statusIv = flag.Int("status-period", 10, "seconds between status lines")

		// Hostile-WAN hardening (DESIGN.md §10).
		readTimeout = flag.Int("read-timeout", 300, "seconds a connection may stay silent before eviction (0: no deadline)")
		maxConns    = flag.Int("max-conns", 0, "max simultaneous connections, evicting the most idle at the cap (0: unlimited)")
		maxMsg      = flag.Int64("max-msg-bytes", transport.DefaultMaxMessageBytes, "per-message byte limit (negative: unlimited)")
		tlsCert     = flag.String("tls-cert", "", "server certificate PEM (with -tls-key enables TLS)")
		tlsKey      = flag.String("tls-key", "", "server key PEM")
		tlsClientCA = flag.String("tls-client-ca", "", "require client certificates signed by this CA (certificate auth mode)")
		authToken   = flag.String("auth-token", "", "shared token workers must present (token auth mode)")
	)
	flag.Parse()

	ins, err := flowshop.TaillardNamed(*instance)
	if err != nil {
		log.Fatal(err)
	}
	if *redJobs > 0 || *redMach > 0 {
		j, m := *redJobs, *redMach
		if j == 0 {
			j = ins.Jobs
		}
		if m == 0 {
			m = ins.Machines
		}
		if ins, err = ins.Reduced(j, m); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("instance %s", ins)

	store, err := checkpoint.NewStore(*ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	nb := core.NewNumbering(flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll).Shape())
	opts := []farmer.Option{
		farmer.WithLeaseTTL(time.Duration(*leaseTTL) * time.Second),
	}
	if *useNEH && !store.Exists() {
		_, cmax := flowshop.NEH(ins)
		opts = append(opts, farmer.WithInitialBest(cmax+1, nil))
		log.Printf("SOLUTION primed with NEH+1 = %d", cmax+1)
	}
	f, err := farmer.Restore(nb.RootRange(), store, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if store.Exists() {
		card, size := f.Size()
		log.Printf("resumed from checkpoint: %d intervals, %s numbers left", card, size)
	}

	so := transport.ServerOptions{
		ReadTimeout:     time.Duration(*readTimeout) * time.Second,
		MaxConns:        *maxConns,
		MaxMessageBytes: *maxMsg,
		Token:           *authToken,
		// Compact-codec clients delta-encode intervals against the root
		// range — the tightest reference there is for this resolution.
		WireRef: nb.RootRange(),
	}
	if *tlsCert != "" || *tlsKey != "" {
		if so.TLS, err = transport.LoadServerTLS(*tlsCert, *tlsKey, *tlsClientCA); err != nil {
			log.Fatal(err)
		}
		log.Printf("TLS enabled (client CA: %v, token: %v)", *tlsClientCA != "", *authToken != "")
	}
	srv, err := transport.ServeWith(f, *addr, so)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("serving on %s", srv.Addr())

	ckptTicker := time.NewTicker(time.Duration(*ckptSecs) * time.Second)
	defer ckptTicker.Stop()
	statusTicker := time.NewTicker(time.Duration(*statusIv) * time.Second)
	defer statusTicker.Stop()
	for {
		select {
		case <-ckptTicker.C:
			if err := f.Checkpoint(); err != nil {
				log.Printf("checkpoint failed: %v", err)
			}
		case <-statusTicker.C:
			card, size := f.Size()
			best := f.Best()
			c := f.Counters()
			ss := srv.Stats()
			log.Printf("intervals=%d remaining=%s best=%s alloc=%d ckpt=%d nodes=%d rejected=%d evicted=%d",
				card, size, costString(best.Cost), c.WorkAllocations, c.WorkerCheckpoints, c.ExploredNodes,
				c.RejectedIntervals+c.RejectedReports+c.RejectedPowers, ss.Evicted)
			if f.Done() {
				if err := f.Checkpoint(); err != nil {
					log.Printf("final checkpoint failed: %v", err)
				}
				printResult(ins, f)
				return
			}
		}
	}
}

func costString(c int64) string {
	if c == int64(^uint64(0)>>1) {
		return "inf"
	}
	return fmt.Sprint(c)
}

func printResult(ins *flowshop.Instance, f *farmer.Farmer) {
	best := f.Best()
	fmt.Printf("RESOLUTION COMPLETE\noptimal makespan: %d (with proof of optimality)\n", best.Cost)
	if best.Path != nil {
		if perm, err := flowshop.PermutationOfPath(ins.Jobs, best.Path); err == nil {
			fmt.Print("schedule (1-based):")
			for _, j := range perm {
				fmt.Printf(" %d", j+1)
			}
			fmt.Println()
		}
	}
	red := f.Redundancy()
	fmt.Printf("redundancy: %.3f%%\n", 100*red.Rate())
}
