// Command worker joins a TCP farmer (cmd/farmer) or sub-farmer
// (cmd/subfarmer) as one or more B&B processes — the paper's worker side:
// pull-model messaging (works from behind firewalls and NATs), periodic
// interval checkpointing, immediate solution push. Kill it any time: the
// farmer's lease mechanism recovers its intervals from their last
// checkpoint. If the coordinator goes away, the worker reconnects with
// jittered exponential backoff and a bounded retry budget, so a farmer
// restart is met by a trickle of staggered rejoins instead of a
// thundering herd.
//
// The instance configuration must match the farmer's — like the paper's
// deployment, problem data is distributed out of band and only intervals
// travel.
//
// Usage:
//
//	worker -addr farmerhost:4321 -instance ta056 -reduce-jobs 13 -reduce-machines 8 -procs 4 -cores 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"time"

	"repro/gridbb"
	"repro/internal/flowshop"
	"repro/internal/transport"
	"repro/internal/worker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("worker: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:4321", "farmer address")
		instance = flag.String("instance", "ta056", "Taillard instance (must match the farmer)")
		redJobs  = flag.Int("reduce-jobs", 0, "reduce to this many jobs (must match the farmer)")
		redMach  = flag.Int("reduce-machines", 0, "reduce to this many machines (must match the farmer)")
		procs    = flag.Int("procs", 1, "B&B processes to host (the paper: one per processor)")
		cores    = flag.Int("cores", 1, "shard explorers per process (multicore engine; 1 = the paper's single explorer, 0 = all cores of the host)")
		bound    = flag.String("bound", "one", "bound: one, two, combined")
		update   = flag.Int64("update-nodes", 1<<16, "nodes between interval checkpoints")
		name     = flag.String("name", "", "worker name prefix (default host-pid)")
		retries  = flag.Int("max-retries", 10, "bounded reconnect attempts per process (progress resets the budget)")

		// Hostile-WAN hardening (DESIGN.md §10).
		callTimeout = flag.Int("call-timeout", 30, "seconds one protocol call may take before ErrDeadline (0: no deadline)")
		tlsCA       = flag.String("tls-ca", "", "CA to verify the farmer against (enables TLS)")
		tlsCert     = flag.String("tls-cert", "", "client certificate PEM (certificate auth mode)")
		tlsKey      = flag.String("tls-key", "", "client key PEM")
		tlsName     = flag.String("tls-server-name", "", "expected server name when it differs from -addr's host")
		authToken   = flag.String("auth-token", "", "shared token to present to the farmer (token auth mode)")

		// Wire-level speed (DESIGN.md §11). Both are negotiated/pooled, so
		// both are safe against coordinators of any vintage.
		compact = flag.Bool("compact", true, "negotiate the compact wire codec (falls back to text-gob against old farmers)")
		share   = flag.Bool("share", true, "multiplex all -procs sessions over one physical connection per farmer address")
	)
	flag.Parse()

	ins, err := flowshop.TaillardNamed(*instance)
	if err != nil {
		log.Fatal(err)
	}
	if *redJobs > 0 || *redMach > 0 {
		j, m := *redJobs, *redMach
		if j == 0 {
			j = ins.Jobs
		}
		if m == 0 {
			m = ins.Machines
		}
		if ins, err = ins.Reduced(j, m); err != nil {
			log.Fatal(err)
		}
	}
	kind := flowshop.BoundOneMachine
	switch *bound {
	case "one":
	case "two":
		kind = flowshop.BoundTwoMachine
	case "combined":
		kind = flowshop.BoundCombined
	default:
		log.Fatalf("unknown bound %q", *bound)
	}
	prefix := *name
	if prefix == "" {
		host, _ := os.Hostname()
		prefix = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	// Per-call deadline plus identity. Retries stay 0 at this layer: the
	// per-process reconnect loop below is the retry mechanism, with its
	// own jitter and budget.
	dialOpts := gridbb.DialOptions{
		Policy:  gridbb.Policy{Timeout: time.Duration(*callTimeout) * time.Second},
		Token:   *authToken,
		Compact: *compact,
		Share:   *share,
	}
	if *tlsCA != "" || *tlsCert != "" || *tlsKey != "" {
		if dialOpts.TLS, err = transport.LoadClientTLS(*tlsCA, *tlsCert, *tlsKey, *tlsName); err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var wg sync.WaitGroup
	for i := 0; i < *procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := worker.Config{
				ID:                transport.WorkerID(fmt.Sprintf("%s-p%d", prefix, i)),
				Power:             1,
				AutoPower:         true, // measure the real rate, report it
				UpdatePeriodNodes: *update,
				Cores:             *cores,
			}
			// Per-process jitter source: two workers must never share a
			// backoff schedule, or a farmer restart turns every retry
			// round into a synchronized stampede. The schedule itself
			// (full jitter over an exponential step) is the shared
			// transport.Backoff every reconnect path uses.
			backoff := transport.Backoff{
				Rng: rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(os.Getpid())<<16 ^ int64(i))),
			}
			start := time.Now()
			attempt := 0
			var explored int64
			for {
				// RunRemoteWorkerParallel degrades to the classic single
				// explorer when cores is 1.
				res, err := gridbb.RunRemoteWorkerParallelWith(ctx, *addr, dialOpts, cfg, func() gridbb.Problem {
					return flowshop.NewProblem(ins, kind, flowshop.PairsAll)
				})
				explored += res.Stats.Explored
				if err == nil || ctx.Err() != nil {
					log.Printf("process %d done in %s: explored %d nodes, %d updates, local best %s",
						i, time.Since(start).Round(time.Second), explored, res.Updates, costString(res.Best.Cost))
					return
				}
				// A run that made progress proves the coordinator was
				// reachable: the failure is fresh, so the retry budget
				// and the backoff start over.
				if res.Stats.Explored > 0 {
					attempt = 0
					backoff.Reset()
				}
				attempt++
				if attempt > *retries {
					log.Printf("process %d: giving up after %d attempts: %v", i, attempt-1, err)
					return
				}
				d := backoff.Next()
				log.Printf("process %d: %v — reconnecting in %s (attempt %d/%d)", i, err, d.Round(time.Millisecond), attempt, *retries)
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
			}
		}(i)
	}
	wg.Wait()
}

func costString(c int64) string {
	if c == gridbb.Infinity {
		return "inf"
	}
	return fmt.Sprint(c)
}
