// Command taillard generates Taillard (1993) flowshop benchmark instances
// bit-exactly from their published seeds, prints them in the conventional
// benchmark text layout, and evaluates schedules.
//
// Usage:
//
//	taillard -instance ta056            # print the paper's instance
//	taillard -jobs 20 -machines 5 -seed 873654221
//	taillard -instance ta056 -eval "14,37,3,..."   # makespan of a schedule (1-based)
//	taillard -list                      # list the 120 published instances
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/flowshop"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("taillard: ")
	var (
		instance = flag.String("instance", "", "published instance name (ta001..ta120)")
		jobs     = flag.Int("jobs", 0, "jobs for a custom instance")
		machines = flag.Int("machines", 0, "machines for a custom instance")
		seed     = flag.Int64("seed", 0, "time seed for a custom instance")
		evalPerm = flag.String("eval", "", "comma-separated 1-based job schedule to evaluate instead of printing the matrix")
		list     = flag.Bool("list", false, "list the published instances")
		neh      = flag.Bool("neh", false, "print the NEH heuristic schedule and makespan")
		file     = flag.String("file", "", "read the instance from a benchmark-layout file instead of generating")
		out      = flag.String("o", "", "write the instance to a file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, idx := range flowshop.TaillardIndices() {
			ins, err := flowshop.TaillardByIndex(idx)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("ta%03d  %3d jobs x %2d machines\n", idx, ins.Jobs, ins.Machines)
		}
		return
	}

	var ins *flowshop.Instance
	switch {
	case *file != "":
		var err error
		ins, err = flowshop.ParseFile(*file)
		if err != nil {
			log.Fatal(err)
		}
	case *instance != "":
		var err error
		ins, err = flowshop.TaillardNamed(*instance)
		if err != nil {
			log.Fatal(err)
		}
	case *jobs > 0 && *machines > 0 && *seed > 0:
		ins = flowshop.Taillard(*jobs, *machines, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}

	switch {
	case *evalPerm != "":
		perm, err := parsePerm(*evalPerm, ins.Jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s makespan = %d\n", ins.Name, ins.Makespan(perm))
	case *neh:
		seq, cmax := flowshop.NEH(ins)
		fmt.Printf("%s NEH makespan = %d\nschedule (1-based):", ins.Name, cmax)
		for _, j := range seq {
			fmt.Printf(" %d", j+1)
		}
		fmt.Println()
	default:
		if *out != "" {
			if err := ins.WriteFile(*out); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s to %s\n", ins, *out)
			return
		}
		fmt.Print(ins.Format())
	}
}

// parsePerm converts a comma-separated 1-based schedule into 0-based job
// indices.
func parsePerm(s string, jobs int) ([]int, error) {
	fields := strings.Split(s, ",")
	if len(fields) != jobs {
		return nil, fmt.Errorf("schedule has %d entries for %d jobs", len(fields), jobs)
	}
	perm := make([]int, 0, jobs)
	for _, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad entry %q: %v", f, err)
		}
		perm = append(perm, v-1)
	}
	return perm, nil
}
