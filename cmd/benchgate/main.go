// Command benchgate is the repo's in-tree perf gate: a benchstat-style
// comparator that reads `go test -bench` output on stdin and compares the
// best observation of each benchmark metric against the committed record
// (the "gate" section of a BENCH_pr*.json file). It exits non-zero when
// any gated metric regresses by more than the allowed percentage, so CI
// can fail a PR that quietly slows the protocol-hot paths.
//
// Usage:
//
//	go test -run '^$' -bench ... -count 3 . | benchgate -baseline BENCH_pr8.json
//
// Best-of semantics: with -count N the gate keeps the minimum of each
// metric across repetitions, like benchstat's best-case column — the
// minimum is the least noisy estimator of the true cost on a shared host.
// Deterministic metrics (wire-B/fold, allocs/op) gate tightly across
// hosts; ns/op baselines are host-relative, which is why the allowance is
// a percentage and recorded next to the host string in the record file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// gateFile is the subset of a BENCH_pr*.json record the gate reads.
type gateFile struct {
	Gate struct {
		// MaxRegressionPct is the allowed worsening, in percent, for
		// every gated metric (overridable per run with -max-regress).
		MaxRegressionPct float64 `json:"max_regression_pct"`
		// NsOpAllowancePct, when positive, widens the allowance for the
		// ns/op metric only. Wall-clock cost on a shared host swings far
		// beyond the deterministic metrics' noise floor (a concurrent
		// build doubles loopback RPC latency), so the ns/op gate is
		// tuned to catch structural slowdowns — an accidental O(W) scan,
		// a lost fast path — not scheduler weather.
		NsOpAllowancePct float64 `json:"ns_op_allowance_pct"`
		// Benchmarks maps a fully qualified benchmark name (including
		// sub-benchmark path, excluding the -GOMAXPROCS suffix) to its
		// recorded metrics, keyed by the unit string exactly as `go
		// test -bench` prints it ("ns/op", "allocs/op", "wire-B/fold").
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	} `json:"gate"`
}

// parseBench reads `go test -bench` text and returns, per benchmark name,
// the minimum observed value of every metric across repetitions.
func parseBench(r *bufio.Scanner) (map[string]map[string]float64, error) {
	best := make(map[string]map[string]float64)
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix go test appends to the name.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count: not a result line
		}
		m := best[name]
		if m == nil {
			m = make(map[string]float64)
			best[name] = m
		}
		// The remainder alternates value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in %q", fields[i], line)
			}
			unit := fields[i+1]
			if cur, ok := m[unit]; !ok || v < cur {
				m[unit] = v
			}
		}
	}
	return best, r.Err()
}

func main() {
	baseline := flag.String("baseline", "", "BENCH_pr*.json record holding the gate section")
	maxRegress := flag.Float64("max-regress", 0, "allowed regression in percent (0: use the record's value)")
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var gf gateFile
	if err := json.Unmarshal(raw, &gf); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	if len(gf.Gate.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no gate.benchmarks section\n", *baseline)
		os.Exit(2)
	}
	allow := gf.Gate.MaxRegressionPct
	if *maxRegress > 0 {
		allow = *maxRegress
	}
	if allow <= 0 {
		allow = 10
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	got, err := parseBench(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(gf.Gate.Benchmarks))
	for name := range gf.Gate.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		cur, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %s: benchmark missing from input\n", name)
			failed = true
			continue
		}
		units := make([]string, 0, len(gf.Gate.Benchmarks[name]))
		for unit := range gf.Gate.Benchmarks[name] {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			base := gf.Gate.Benchmarks[name][unit]
			v, ok := cur[unit]
			if !ok {
				fmt.Printf("FAIL %s: metric %s missing from input\n", name, unit)
				failed = true
				continue
			}
			delta := 0.0
			if base > 0 {
				delta = (v - base) / base * 100
			}
			allowed := allow
			if unit == "ns/op" && gf.Gate.NsOpAllowancePct > 0 {
				allowed = gf.Gate.NsOpAllowancePct
			}
			verdict := "ok  "
			if delta > allowed {
				verdict = "FAIL"
				failed = true
			}
			fmt.Printf("%s %s %s: %.4g vs record %.4g (%+.1f%%, allowed +%.0f%%)\n",
				verdict, name, unit, v, base, delta, allowed)
		}
	}
	if failed {
		os.Exit(1)
	}
}
