// Command subfarmer runs the mid tier of a hierarchical farmer tree
// (DESIGN.md §9): it connects to a root farmer (cmd/farmer) as one worker,
// serves its own fleet of workers (cmd/worker) over the unchanged
// farmer–worker protocol, aggregates the fleet into one interval fold and
// one power, and asks the root for a fresh sub-range only when its local
// table runs dry. Kill it any time: it checkpoints its local INTERVALS,
// SOLUTION and root binding to disk and resumes on restart — the root
// sees only a lease blip.
//
// Unlike the root farmer and the workers, a sub-farmer needs NO problem
// configuration: it is pure interval algebra. Work units are intervals at
// every tier, so the mid tier relays and partitions them without ever
// decoding a node — the strongest practical consequence of the paper's
// interval coding.
//
// Usage:
//
//	farmer    -addr :4321 -instance ta056 &
//	subfarmer -root roothost:4321 -addr :4322 &
//	worker    -addr subhost:4322 -instance ta056 &   # fleet of this subtree
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/farmer"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("subfarmer: ")
	var (
		rootAddr = flag.String("root", "127.0.0.1:4321", "root farmer address")
		addr     = flag.String("addr", ":4322", "listen address for this subtree's workers")
		name     = flag.String("name", "", "sub-farmer identity at the root (default host-pid)")
		ckptDir  = flag.String("checkpoint-dir", "subfarmer-checkpoints", "snapshot directory (two files + root binding)")
		ckptSecs = flag.Int("checkpoint-period", 1800, "snapshot period in seconds")
		foldSecs = flag.Int("update-period", 30, "seconds between folds to the root (keep well under the root's lease TTL)")
		leaseTTL = flag.Int("lease-ttl", 300, "seconds of silence before a fleet worker is presumed dead")
		statusIv = flag.Int("status-period", 10, "seconds between status lines")

		// Upstream hardening (DESIGN.md §10): deadline + in-call retries on
		// the root leg, identity presented to the root.
		callTimeout = flag.Int("call-timeout", 30, "seconds one root call may take before ErrDeadline (0: no deadline)")
		callRetries = flag.Int("call-retries", 2, "in-call retries against the root before surfacing the error")
		rootCA      = flag.String("root-tls-ca", "", "CA to verify the root farmer against (enables TLS upstream)")
		rootCert    = flag.String("root-tls-cert", "", "client certificate PEM for the root (certificate auth mode)")
		rootKey     = flag.String("root-tls-key", "", "client key PEM for the root")
		rootName    = flag.String("root-tls-server-name", "", "expected root server name when it differs from -root's host")
		rootToken   = flag.String("root-auth-token", "", "shared token to present to the root (token auth mode)")
		compact     = flag.Bool("compact", true, "negotiate the compact wire codec with the root (falls back to text-gob against old roots); fold/refill batching engages automatically either way")

		// Fleet-side hardening: same listener knobs as cmd/farmer.
		readTimeout = flag.Int("read-timeout", 300, "seconds a fleet connection may stay silent before eviction (0: no deadline)")
		maxConns    = flag.Int("max-conns", 0, "max simultaneous fleet connections, evicting the most idle at the cap (0: unlimited)")
		maxMsg      = flag.Int64("max-msg-bytes", transport.DefaultMaxMessageBytes, "per-message byte limit (negative: unlimited)")
		tlsCert     = flag.String("tls-cert", "", "server certificate PEM for the fleet listener (with -tls-key enables TLS)")
		tlsKey      = flag.String("tls-key", "", "server key PEM for the fleet listener")
		tlsClientCA = flag.String("tls-client-ca", "", "require fleet client certificates signed by this CA")
		authToken   = flag.String("auth-token", "", "shared token fleet workers must present")
	)
	flag.Parse()

	id := transport.WorkerID(*name)
	if id == "" {
		host, _ := os.Hostname()
		id = transport.WorkerID(fmt.Sprintf("sub-%s-%d", host, os.Getpid()))
	}

	store, err := checkpoint.NewStore(*ckptDir)
	if err != nil {
		log.Fatal(err)
	}

	// The reconnecting client outlives root restarts and partitions: it
	// re-dials with jittered backoff on every transport failure, and the
	// sub-farmer's cadences already treat a failed exchange as "lost,
	// retry later" — so a root outage degrades to a lease blip instead of
	// permanently severing the subtree (a mid tier must never need a
	// human to rejoin).
	upOpts := transport.DialOptions{
		Policy: transport.Policy{
			Timeout: time.Duration(*callTimeout) * time.Second,
			Retries: *callRetries,
		},
		Token:   *rootToken,
		Compact: *compact,
	}
	if *rootCA != "" || *rootCert != "" || *rootKey != "" {
		if upOpts.TLS, err = transport.LoadClientTLS(*rootCA, *rootCert, *rootKey, *rootName); err != nil {
			log.Fatal(err)
		}
	}
	up := transport.NewRedialWith(*rootAddr, upOpts)
	defer up.Close()

	sub, err := farmer.RestoreSubFarmer(farmer.SubConfig{
		ID:           id,
		UpdatePeriod: time.Duration(*foldSecs) * time.Second,
		FleetTTL:     time.Duration(*leaseTTL) * time.Second,
		Store:        store,
		InnerOptions: []farmer.Option{
			farmer.WithLeaseTTL(time.Duration(*leaseTTL) * time.Second),
		},
	}, up)
	if err != nil {
		log.Fatal(err)
	}
	if store.Exists() {
		card, size := sub.Inner().Size()
		upID, bound := sub.Bound()
		log.Printf("resumed from checkpoint: %d intervals, %s numbers left, bound=%v(root id %d)", card, size, bound, upID)
	}

	so := transport.ServerOptions{
		ReadTimeout:     time.Duration(*readTimeout) * time.Second,
		MaxConns:        *maxConns,
		MaxMessageBytes: *maxMsg,
		Token:           *authToken,
	}
	if *tlsCert != "" || *tlsKey != "" {
		if so.TLS, err = transport.LoadServerTLS(*tlsCert, *tlsKey, *tlsClientCA); err != nil {
			log.Fatal(err)
		}
		log.Printf("fleet TLS enabled (client CA: %v, token: %v)", *tlsClientCA != "", *authToken != "")
	}
	srv, err := transport.ServeWith(sub, *addr, so)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("serving subtree %q on %s, root %s", id, srv.Addr(), *rootAddr)

	pulse := time.NewTicker(time.Duration(*foldSecs) * time.Second)
	defer pulse.Stop()
	ckpt := time.NewTicker(time.Duration(*ckptSecs) * time.Second)
	defer ckpt.Stop()
	status := time.NewTicker(time.Duration(*statusIv) * time.Second)
	defer status.Stop()
	for {
		select {
		case <-pulse.C:
			sub.Pulse()
		case <-ckpt.C:
			if err := sub.Checkpoint(); err != nil {
				log.Printf("checkpoint failed: %v", err)
			}
		case <-status.C:
			card, size := sub.Inner().Size()
			c := sub.Counters()
			log.Printf("intervals=%d remaining=%s refills=%d folds=%d lost=%d timeouts=%d",
				card, size, c.Refills, c.UpstreamUpdates, c.UpstreamLost, c.UpstreamTimeouts)
			if sub.Finished() {
				if err := sub.Checkpoint(); err != nil {
					log.Printf("final checkpoint failed: %v", err)
				}
				ic := sub.Inner().Counters()
				log.Printf("resolution complete: subtree explored %d nodes over %d allocations", ic.ExploredNodes, ic.WorkAllocations)
				return
			}
		}
	}
}
