# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; `make bench` emits the -benchmem record as JSON so every PR can
# append to the perf trajectory (see DESIGN.md §3).

GO      ?= go
BENCH_OUT ?= bench.json

.PHONY: all build vet test race bench bench-hot bench-smoke bench-tree bench-transport bench-wire bench-gate fuzz-smoke check docs-check

# The committed perf record the bench-gate compares against.
BENCH_BASELINE ?= BENCH_pr10.json

all: vet build test

# The full local gate: everything CI runs, in one target. go vet is the
# de-flake guard — it must stay both here and in CI.
check: vet build test race fuzz-smoke bench-smoke docs-check

# The docs gate (CI runs it as its own job): the README must exist —
# doc.go points at it — and the tree must be gofmt-clean and vet-clean so
# pkgsite/godoc render what we think they render.
docs-check:
	@test -f README.md || { echo "docs-check: README.md is missing (doc.go references it)"; exit 1; }
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "docs-check: gofmt -l flags:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent runtime (farmer monitor, p2p ring, gridbb workers) under
# the race detector; CI runs this as its own job.
race:
	$(GO) test -race ./...

# Full benchmark sweep as a JSON event stream (one test2json object per
# line; the BenchmarkResult lines carry ns/op, B/op and allocs/op).
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime 1s . > $(BENCH_OUT)
	@echo "benchmark record written to $(BENCH_OUT)"

# The two hot-loop benchmarks the perf acceptance gates watch.
bench-hot:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1EngineThroughput|BenchmarkExplorerInteriorStep' -benchmem -benchtime 2s -count 3 .

# The hierarchical-farmer throughput record (flat vs 2-level tree, plus
# root-cost flatness in the subtree count). ns/op is aggregate: read the
# flat-vs-tree ratio on a multicore box — on one core both topologies
# serialize and only the root-flatness rows are meaningful (BENCH_pr5.json).
bench-tree:
	$(GO) test -run '^$$' -bench BenchmarkFarmerTreeThroughput -benchmem -benchtime 1s -count 2 .

# The hardening overhead record (DESIGN.md §10): raw vs hardened transport
# over loopback. Acceptance gate: hardened within 5% of raw (BENCH_pr6.json).
bench-transport:
	$(GO) test -run '^$$' -bench BenchmarkHardenedCallOverhead -benchmem -benchtime 1s -count 5 .

# The wire-dialect record (DESIGN.md §11): bytes and latency per
# steady-state fold, text-gob vs compact, through a counting TCP proxy,
# plus the hardened-call overhead the codec must not regress. Acceptance
# gates (BENCH_pr7.json): compact ≥5× fewer wire-B/fold than textgob, and
# hardened ns/op no worse than the BENCH_pr6.json record.
bench-wire:
	$(GO) test -run '^$$' -bench 'BenchmarkWireBytesPerFold|BenchmarkHardenedCallOverhead' -benchmem -benchtime 1s -count 3 .

# The CI perf gate (DESIGN.md §12): the protocol-hot benchmarks — wire
# fold, single-farmer request, multi-tenant job-table request, durable
# snapshot write — three repetitions each, best-of compared by
# cmd/benchgate against the gate section of $(BENCH_BASELINE); fails on a
# regression beyond the record's allowance. Deterministic metrics
# (wire-B/fold, file-B, allocs/op) hold across hosts; ns/op is
# host-relative, hence the percentage allowance.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkWireBytesPerFold|BenchmarkFarmerRequestThroughput|BenchmarkJobTableRequestThroughput|BenchmarkCheckpointSave' -benchmem -benchtime 1s -count 3 . | $(GO) run ./cmd/benchgate -baseline $(BENCH_BASELINE)

# The hostile-input fuzzers, briefly: the corpus seeds plus a few seconds
# of fresh mutation on every gate run, so the invariants cannot silently
# rot between dedicated fuzzing sessions. Three frontiers: the coordinator
# boundary (no panic, INTERVALS stays a partition fragment, rejections are
# counted), the multi-tenant job boundary (hostile job tags and cross-job
# intervals land in rejection counters, the partition invariant holds per
# job), the compact wire codec (no panic or over-read on arbitrary
# frames; decoded frames re-encode canonically), and the checkpoint
# snapshot parser (arbitrary on-disk bytes either load cleanly or fail
# with ErrCorrupt — never panic, never a silently wrong snapshot). go
# test runs one fuzz target per invocation, hence the separate lines.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzCoordinatorBoundary$$' -fuzztime 10s ./internal/farmer
	$(GO) test -run '^$$' -fuzz '^FuzzJobBoundary$$' -fuzztime 10s ./internal/jobs
	$(GO) test -run '^$$' -fuzz '^FuzzWireFrame$$' -fuzztime 10s ./internal/transport
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointLoad$$' -fuzztime 10s ./internal/checkpoint

# Every benchmark exactly once: not a measurement, a compile-and-run guard
# so bench_test.go cannot bit-rot between perf PRs. CI runs this on every
# push (BenchmarkFarmerTreeThroughput included, so the tree record cannot
# bit-rot either), and the race job runs the full test suite — the
# chaos scenarios included (tree-churn, ring-restart, and the disk-fault
# schedules in farmer-failover and multi-job-churn) — under the race
# detector.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
