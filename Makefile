# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; `make bench` emits the -benchmem record as JSON so every PR can
# append to the perf trajectory (see DESIGN.md §3).

GO      ?= go
BENCH_OUT ?= bench.json

.PHONY: all build vet test race bench bench-hot bench-smoke bench-tree bench-transport bench-wire fuzz-smoke check docs-check

all: vet build test

# The full local gate: everything CI runs, in one target. go vet is the
# de-flake guard — it must stay both here and in CI.
check: vet build test race fuzz-smoke bench-smoke docs-check

# The docs gate (CI runs it as its own job): the README must exist —
# doc.go points at it — and the tree must be gofmt-clean and vet-clean so
# pkgsite/godoc render what we think they render.
docs-check:
	@test -f README.md || { echo "docs-check: README.md is missing (doc.go references it)"; exit 1; }
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "docs-check: gofmt -l flags:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent runtime (farmer monitor, p2p ring, gridbb workers) under
# the race detector; CI runs this as its own job.
race:
	$(GO) test -race ./...

# Full benchmark sweep as a JSON event stream (one test2json object per
# line; the BenchmarkResult lines carry ns/op, B/op and allocs/op).
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime 1s . > $(BENCH_OUT)
	@echo "benchmark record written to $(BENCH_OUT)"

# The two hot-loop benchmarks the perf acceptance gates watch.
bench-hot:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1EngineThroughput|BenchmarkExplorerInteriorStep' -benchmem -benchtime 2s -count 3 .

# The hierarchical-farmer throughput record (flat vs 2-level tree, plus
# root-cost flatness in the subtree count). ns/op is aggregate: read the
# flat-vs-tree ratio on a multicore box — on one core both topologies
# serialize and only the root-flatness rows are meaningful (BENCH_pr5.json).
bench-tree:
	$(GO) test -run '^$$' -bench BenchmarkFarmerTreeThroughput -benchmem -benchtime 1s -count 2 .

# The hardening overhead record (DESIGN.md §10): raw vs hardened transport
# over loopback. Acceptance gate: hardened within 5% of raw (BENCH_pr6.json).
bench-transport:
	$(GO) test -run '^$$' -bench BenchmarkHardenedCallOverhead -benchmem -benchtime 1s -count 5 .

# The wire-dialect record (DESIGN.md §11): bytes and latency per
# steady-state fold, text-gob vs compact, through a counting TCP proxy,
# plus the hardened-call overhead the codec must not regress. Acceptance
# gates (BENCH_pr7.json): compact ≥5× fewer wire-B/fold than textgob, and
# hardened ns/op no worse than the BENCH_pr6.json record.
bench-wire:
	$(GO) test -run '^$$' -bench 'BenchmarkWireBytesPerFold|BenchmarkHardenedCallOverhead' -benchmem -benchtime 1s -count 3 .

# The coordinator-boundary fuzzer, briefly: the corpus seeds plus a few
# seconds of fresh mutation on every gate run, so the hostile-peer
# invariants (no panic, INTERVALS stays a partition fragment, rejections
# are counted) cannot silently rot between dedicated fuzzing sessions.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzCoordinatorBoundary$$' -fuzztime 10s ./internal/farmer

# Every benchmark exactly once: not a measurement, a compile-and-run guard
# so bench_test.go cannot bit-rot between perf PRs. CI runs this on every
# push (BenchmarkFarmerTreeThroughput included, so the tree record cannot
# bit-rot either), and the race job runs the full test suite — the
# tree-churn chaos scenario included — under the race detector.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
