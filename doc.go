// Package repro is a full Go reproduction of Mezmaz, Melab and Talbi,
// "A Grid-enabled Branch and Bound Algorithm for Solving Challenging
// Combinatorial Optimization Problems" (INRIA RR-5945 / IPPS 2007): an
// interval coding of B&B work units, a farmer–worker grid runtime with
// dynamic load balancing, fault tolerance, implicit termination detection
// and global solution sharing, the permutation flowshop application with
// Taillard's benchmark generator, and a discrete-event grid simulator
// reproducing the paper's evaluation (Tables 1–3, Figures 1–7). Beyond the
// paper, each worker can shard its interval across the cores of its host
// (the multicore engine, DESIGN.md §7) while speaking the unchanged
// single-worker protocol, and the farmer serves thousand-worker grids with
// per-request cost logarithmic in the fleet size (the selection index,
// DESIGN.md §8).
//
// The public API lives in repro/gridbb; see README.md for a tour and
// DESIGN.md for the system inventory and the experiment index. The
// benchmarks in bench_test.go regenerate one measurement per table and
// figure of the paper.
package repro
