// TSP demo: the interval coding is problem-independent — the same farmer,
// workers, fold/unfold and load balancing solve a traveling salesman
// instance without a single change to the runtime (the paper's Table 3
// neighbours Ta056 with three famous TSP resolutions).
//
//	go run ./examples/tsp
package main

import (
	"fmt"
	"log"

	"repro/gridbb"
	"repro/internal/tsp"
)

func main() {
	ins := tsp.RandomEuclidean(11, 1000, 42)
	fmt.Printf("solving %s (%d cities)\n", ins.Name, ins.N)

	factory := func() gridbb.Problem { return tsp.NewProblem(ins) }

	// The tour search space is the permutation tree of cities 1..N-1
	// (city 0 anchors the cycle): one interval covers it all.
	nb := gridbb.NewNumbering(factory())
	fmt.Printf("search space: %s tours, interval %v\n", nb.LeafCount(), nb.RootRange())

	res, err := gridbb.Solve(factory(), gridbb.Options{
		Workers:        4,
		ProblemFactory: factory,
	})
	if err != nil {
		log.Fatal(err)
	}

	tour, err := tsp.TourOfPath(ins.N, res.Best.Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal tour length: %d (proof of optimality by exhaustion)\n", res.Best.Cost)
	fmt.Printf("optimal tour: %v -> back to 0\n", append([]int{0}, tour...))
	fmt.Printf("explored %d nodes across %d workers in %s\n",
		res.Counters.ExploredNodes, len(res.PerWorker), res.Elapsed.Round(1e6))

	// Cross-check with the sequential baseline.
	seq, _ := gridbb.SolveSequential(factory(), gridbb.Infinity)
	fmt.Printf("sequential baseline agrees: %v\n", seq.Cost == res.Best.Cost)
}
