// Heterogeneous grid demo: replay the paper's experiment on the simulated
// national grid — the Table 1 pool (1889 processors, 9 administrative
// domains), a day/night availability cycle with crashes, proportional
// load balancing — in a few seconds of real time, and print the Table 2
// statistics block next to the paper's values.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"repro/gridbb"
	"repro/internal/flowshop"
	"repro/internal/gridsim"
)

func main() {
	// A reduced prefix of the genuine Ta056 data plays the full
	// instance (see DESIGN.md for the substitution argument).
	ins, err := flowshop.Ta056().Reduced(13, 8)
	if err != nil {
		log.Fatal(err)
	}
	factory := func() gridbb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	seq, seqStats := gridbb.SolveSequential(factory(), gridbb.Infinity)
	fmt.Printf("workload: %s — %d nodes sequentially, optimum %d\n", ins.Name, seqStats.Explored, seq.Cost)

	// A compressed timeline (20-minute "days") keeps the demo quick while
	// preserving the model — but on the paper's full 1889-processor pool;
	// the calm 24h/25-day replay is cmd/gridsim.
	cfg := gridsim.FastScenario(1, seqStats.Explored*2, 4)
	cfg.Pool = gridsim.Table1Pool()
	cfg.NodesPerGHzPerSecond = gridsim.CalibrateRate(cfg.Pool, cfg.Availability, seqStats.Explored*2, 4*1200)
	cfg.InitialUpper = seq.Cost + 1 // the paper's run-2 protocol
	// Squeezing a 24h day into 20 minutes multiplies the message *rate*
	// by 72; scale the per-message costs down by the same factor so the
	// exploitation rates stay physically meaningful.
	const compression = 86400.0 / 1200.0
	cfg.FarmerCostPerMessageSeconds = 0.008 / compression
	cfg.WorkerRTTSeconds = 0.5 / compression

	fmt.Printf("simulating %d processors in %d domains...\n\n",
		gridsim.PoolSize(cfg.Pool), len(gridsim.PoolDomains(cfg.Pool)))
	res, err := gridsim.New(cfg, factory).Run()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Finished {
		log.Fatalf("simulation did not finish within MaxTicks")
	}

	fmt.Printf("optimal makespan %d (matches sequential proof: %v)\n",
		res.Best.Cost, res.Best.Cost == seq.Cost)
	fmt.Printf("churn: %d joins, %d graceful leaves, %d crashes\n\n", res.Joins, res.Leaves, res.Crashes)
	fmt.Println(res.Table2.RenderComparison())
	fmt.Println("availability trace (cf. paper Figure 7):")
	fmt.Println(gridsim.RenderTrace(res.Trace, 90, 10))
}
