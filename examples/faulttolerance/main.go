// Fault tolerance demo: workers crash mid-exploration and a farmer
// restarts from its two-file checkpoint — and the optimum is still proven.
// This is the §4.1 machinery of the paper exercised end to end:
//
//   - workers checkpoint by re-registering their folded interval;
//
//   - a crashed worker's interval is orphaned after its lease expires and
//     handed to a replacement, losing at most the work since the last
//     checkpoint;
//
//   - the coordinator snapshots INTERVALS and SOLUTION to two files and a
//     brand-new farmer process resumes from them.
//
//     go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/gridbb"
	"repro/internal/checkpoint"
	"repro/internal/farmer"
	"repro/internal/flowshop"
	"repro/internal/transport"
	"repro/internal/worker"
)

func main() {
	ins := flowshop.Taillard(12, 10, 5)
	factory := func() gridbb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	want, _ := gridbb.SolveSequential(factory(), gridbb.Infinity)
	fmt.Printf("instance %s, sequential optimum %d (our oracle)\n", ins, want.Cost)

	dir, err := os.MkdirTemp("", "gridbb-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// A virtual clock lets the demo control lease expiry deterministically.
	var now int64
	clock := func() int64 { return now }

	nb := gridbb.NewNumbering(factory())
	f, err := farmer.Restore(nb.RootRange(), store,
		farmer.WithClock(clock), farmer.WithLeaseTTL(time.Minute))
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: three workers explore; two of them crash without warning.
	fmt.Println("\nphase 1: three workers, two crashes")
	sessions := make([]*worker.Session, 3)
	for i := range sessions {
		sessions[i] = worker.NewSession(worker.Config{
			ID:                transport.WorkerID(fmt.Sprintf("w%d", i)),
			Power:             1,
			UpdatePeriodNodes: 200,
		}, f, factory())
	}
	for round := 0; round < 10; round++ {
		now += int64(10 * time.Second)
		for _, s := range sessions {
			if _, _, err := s.Advance(500); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("  w1 and w2 crash (no goodbye); their intervals idle until the lease expires\n")
	sessions = sessions[:1]
	now += int64(2 * time.Minute)
	f.ExpireNow()

	// Phase 2: the farmer itself "fails": we snapshot, drop it, and
	// restore a new one from the two files.
	if err := f.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	card, size := f.Size()
	fmt.Printf("\nphase 2: farmer checkpointed (%d intervals, %s numbers left) and killed\n", card, size)
	f2, err := farmer.Restore(nb.RootRange(), store,
		farmer.WithClock(clock), farmer.WithLeaseTTL(time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	card2, size2 := f2.Size()
	fmt.Printf("  restored farmer: %d intervals, %s numbers left (identical)\n", card2, size2)

	// Phase 3: fresh workers attach to the restored farmer and finish.
	fmt.Println("\nphase 3: replacement workers finish the resolution")
	fresh := make([]*worker.Session, 3)
	for i := range fresh {
		fresh[i] = worker.NewSession(worker.Config{
			ID:                transport.WorkerID(fmt.Sprintf("r%d", i)),
			Power:             1,
			UpdatePeriodNodes: 500,
		}, f2, factory())
	}
	for !f2.Done() {
		now += int64(10 * time.Second)
		for _, s := range fresh {
			if _, _, err := s.Advance(2000); err != nil {
				log.Fatal(err)
			}
		}
	}

	best := f2.Best()
	fmt.Printf("\noptimal makespan: %d — matches the oracle: %v\n", best.Cost, best.Cost == want.Cost)
	red := f2.Redundancy()
	fmt.Printf("price of the crashes: %.4f%% of the leaf-number space re-explored\n", 100*red.Rate())
	c := f2.Counters()
	fmt.Printf("counters after restore: %d allocations, %d orphan handoffs\n",
		c.WorkAllocations, c.HandedOffOrphans)
}
