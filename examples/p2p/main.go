// P2P demo: the paper's announced future work (§6) — drop the farmer
// entirely. Peers steal intervals directly from each other (the victim
// folds its remaining work, splits it, keeps the left half) and a
// circulating ring token detects termination. Same interval coding, same
// engine, no coordinator, no bottleneck.
//
//	go run ./examples/p2p
package main

import (
	"fmt"
	"log"
	"time"

	"repro/gridbb"
	"repro/internal/flowshop"
)

func main() {
	ins := flowshop.Taillard(12, 10, 5)
	factory := func() gridbb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	fmt.Printf("solving %s with 6 autonomous peers (no farmer)\n", ins)

	start := time.Now()
	res, err := gridbb.SolveP2P(factory, gridbb.P2POptions{Peers: 6, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	perm, err := flowshop.PermutationOfPath(ins.Jobs, res.Best.Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal makespan: %d (proof of optimality by exhaustion)\n", res.Best.Cost)
	fmt.Printf("optimal schedule: %v\n", perm)
	fmt.Printf("work spread: %v nodes per peer\n", res.PerPeer)
	fmt.Printf("steals: %d successful of %d attempts; termination after %d token rounds\n",
		res.Steals, res.StealAttempts, res.TokenRounds)
	fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Millisecond))

	// Cross-check against the farmer–worker runtime.
	fw, err := gridbb.Solve(factory(), gridbb.Options{Workers: 6, ProblemFactory: factory})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("farmer-worker runtime agrees: %v (cost %d)\n", fw.Best.Cost == res.Best.Cost, fw.Best.Cost)
}
