// Quickstart: solve a flowshop instance exactly with the grid-enabled
// Branch and Bound, in-process, and inspect the interval machinery along
// the way.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/gridbb"
	"repro/internal/flowshop"
)

func main() {
	// 1. Pick a problem. Taillard's generator reproduces the published
	// benchmark; 11 jobs keep this demo under a second.
	ins := flowshop.Taillard(11, 5, 3)
	fmt.Printf("solving %s\n", ins)

	// Every worker needs its own Problem value (the state machine is
	// single-threaded), so the library takes a factory.
	factory := func() gridbb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}

	// 2. Look at the coding the paper is about: the whole search space is
	// one interval of node numbers.
	nb := gridbb.NewNumbering(factory())
	fmt.Printf("search space: %s leaves, coded as the interval %v\n",
		nb.LeafCount(), nb.RootRange())

	// A work unit is any sub-interval; unfold shows the frontier it
	// stands for.
	root := nb.RootRange()
	a := root.A()
	b := root.B()
	mid := a.Add(a, b).Rsh(a, 1)
	_, right := root.SplitAt(mid)
	fmt.Printf("the right half %v unfolds into %d frontier nodes\n",
		right, len(gridbb.Unfold(nb, right)))

	// 3. Prime the upper bound with the NEH heuristic, like a production
	// run would.
	_, neh := flowshop.NEH(ins)
	fmt.Printf("NEH upper bound: %d\n", neh)

	// 4. Solve with a farmer and four workers exchanging intervals.
	res, err := gridbb.Solve(factory(), gridbb.Options{
		Workers:        4,
		ProblemFactory: factory,
		InitialUpper:   neh + 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	perm, err := flowshop.PermutationOfPath(ins.Jobs, res.Best.Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal makespan: %d (proof of optimality by exhaustion)\n", res.Best.Cost)
	fmt.Printf("optimal schedule: %v\n", perm)
	fmt.Printf("protocol: %d allocations, %d worker checkpoints, %d solution reports\n",
		res.Counters.WorkAllocations, res.Counters.WorkerCheckpoints, res.Counters.SolutionReports)
	fmt.Printf("explored %d nodes in %s\n", res.Counters.ExploredNodes, res.Elapsed.Round(1e6))
}
