// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus the ablation studies of the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table mapping (see DESIGN.md §3):
//
//	Fig 1  BenchmarkFig1WeightVector        weight vector construction
//	Fig 2  BenchmarkFig2NumberOfNode        eq. 6 at Ta056 depth
//	Fig 3  BenchmarkFig3RangeOfNode         eq. 7 at Ta056 depth
//	Fig 4  BenchmarkFig4Fold / Unfold       the two operators at Ta056 scale
//	Fig 5  BenchmarkFig5ProtocolRound       request+update+report round
//	Fig 6  BenchmarkTable1PoolBuild         pool construction/validation
//	Fig 7  BenchmarkFig7AvailabilityTrace   trace generation
//	Tab 1  BenchmarkTable1EngineThroughput  engine speed defining "power"
//	—      BenchmarkExplorerInteriorStep    interior-mode hot loop, 0 allocs
//	Tab 2  BenchmarkTable2Resolution        full simulated grid resolution
//	Tab 3  BenchmarkTable3Domains           flowshop vs TSP vs knapsack
//
// The benchmarks report domain metrics (bytes per work unit, redundancy,
// allocations) through b.ReportMetric, so `go test -bench` output doubles
// as the quantitative record in EXPERIMENTS.md.
package repro

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bb"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/farmer"
	"repro/internal/flowshop"
	"repro/internal/gridsim"
	"repro/internal/interval"
	"repro/internal/jobs"
	"repro/internal/knapsack"
	"repro/internal/p2p"
	"repro/internal/qap"
	"repro/internal/transport"
	"repro/internal/tree"
	"repro/internal/tsp"
	"repro/internal/worker"
)

// ta056Numbering is the numbering of the real headline tree: 50 jobs,
// numbers around 2^214.
func ta056Numbering() *core.Numbering {
	return core.NewNumbering(tree.Permutation{N: 50})
}

// randomLeafPath draws a random leaf rank path of the shape.
func randomLeafPath(rng *rand.Rand, s tree.Shape) []int {
	ranks := make([]int, s.Depth())
	for d := range ranks {
		ranks[d] = rng.Intn(s.Branching(d))
	}
	return ranks
}

// BenchmarkFig1WeightVector measures the startup cost of the per-depth
// weight vector (Figure 1) at the paper's scale: factorials up to 50!.
func BenchmarkFig1WeightVector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if w := tree.Weights(tree.Permutation{N: 50}); len(w) != 51 {
			b.Fatal("bad weight vector")
		}
	}
}

// BenchmarkFig2NumberOfNode measures eq. (6): the number of a leaf of the
// Ta056 tree.
func BenchmarkFig2NumberOfNode(b *testing.B) {
	nb := ta056Numbering()
	rng := rand.New(rand.NewSource(1))
	paths := make([][]int, 64)
	for i := range paths {
		paths[i] = randomLeafPath(rng, nb.Shape())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nb.Number(paths[i%len(paths)]).Sign() < 0 {
			b.Fatal("negative number")
		}
	}
}

// BenchmarkFig3RangeOfNode measures eq. (7) on mid-depth nodes.
func BenchmarkFig3RangeOfNode(b *testing.B) {
	nb := ta056Numbering()
	rng := rand.New(rand.NewSource(2))
	paths := make([][]int, 64)
	for i := range paths {
		paths[i] = randomLeafPath(rng, nb.Shape())[:25]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iv := nb.Range(paths[i%len(paths)])
		if iv.IsEmpty() {
			b.Fatal("empty range")
		}
	}
}

// BenchmarkFig4Fold folds a realistic Ta056-scale active list (one entry
// per depth, as a DFS frontier has).
func BenchmarkFig4Fold(b *testing.B) {
	nb := ta056Numbering()
	rng := rand.New(rand.NewSource(3))
	a := new(big.Int).Rand(rng, nb.LeafCount())
	bEnd := new(big.Int).Add(a, big.NewInt(1))
	bEnd.Add(bEnd, new(big.Int).Rand(rng, new(big.Int).Sub(nb.LeafCount(), bEnd)))
	active := core.Unfold(nb, interval.New(a, bEnd))
	if len(active) == 0 {
		b.Fatal("empty active list")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Fold(nb, active); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Unfold unfolds random Ta056-scale intervals; the paper's
// §3.5 bound promises O(P·K) work regardless of interval size.
func BenchmarkFig4Unfold(b *testing.B) {
	nb := ta056Numbering()
	rng := rand.New(rand.NewSource(4))
	type iv struct{ iv interval.Interval }
	cases := make([]iv, 32)
	for i := range cases {
		a := new(big.Int).Rand(rng, nb.LeafCount())
		e := new(big.Int).Add(a, big.NewInt(1))
		e.Add(e, new(big.Int).Rand(rng, new(big.Int).Sub(nb.LeafCount(), e)))
		cases[i] = iv{interval.New(a, e)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nodes := core.Unfold(nb, cases[i%len(cases)].iv); len(nodes) == 0 {
			b.Fatal("empty unfold")
		}
	}
}

// BenchmarkFig5ProtocolRound measures one full worker-coordinator exchange
// cycle (request + interval update + solution report) against an in-process
// farmer at Ta056 scale — the cost the Figure 5 architecture pays per
// checkpoint period.
func BenchmarkFig5ProtocolRound(b *testing.B) {
	nb := ta056Numbering()
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := farmer.New(nb.RootRange())
		b.StartTimer()
		reply, err := f.RequestWork(transport.WorkRequest{Worker: "bench", Power: 1})
		if err != nil {
			b.Fatal(err)
		}
		mid := new(big.Int).Rand(rng, nb.LeafCount())
		if _, err := f.UpdateInterval(transport.UpdateRequest{
			Worker: "bench", IntervalID: reply.IntervalID,
			Remaining: interval.New(mid, nb.LeafCount()), Power: 1, ExploredDelta: 1000,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := f.ReportSolution(transport.SolutionReport{Worker: "bench", Cost: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFarmerRequestThroughput measures the farmer's per-request cost
// as a function of the number of tracked intervals — the grid-size axis of
// the paper's scalability claim (the farmer's 1.7 % exploitation rate only
// holds if serving a request stays cheap as the fleet grows). The setup
// populates INTERVALS with `workers` entries of heterogeneous holder
// powers, then the timed loop alternates one RequestWork (splitting a
// tracked interval) with one UpdateInterval retiring the freshly donated
// interval, so the tracked count stays pinned at `workers` throughout. The
// Ta056-scale root (numbers ~2^214) keeps every interval far above the
// duplication threshold for any b.N. Sub-linear ns/op growth from 100 to
// 2000 is the acceptance gate of the indexed selection (BENCH_pr4.json).
func BenchmarkFarmerRequestThroughput(b *testing.B) {
	nb := ta056Numbering()
	for _, workers := range []int{100, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// Powers cycle through a handful of host classes like a real
			// heterogeneous pool (Table 1 has ~8 speed grades).
			powers := []int64{800, 1300, 1700, 2000, 2200, 2400, 2800, 3200}
			// populate seeds INTERVALS with `workers` owned entries.
			populate := func() *farmer.Farmer {
				f := farmer.New(nb.RootRange(), farmer.WithClock(func() int64 { return 0 }))
				for i := 0; i < workers; i++ {
					_, err := f.RequestWork(transport.WorkRequest{
						Worker: transport.WorkerID(fmt.Sprintf("seed-%d", i)),
						Power:  powers[i%len(powers)],
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				return f
			}
			f := populate()
			// Every request permanently consumes the donated length (a
			// retire cannot grow INTERVALS back — intersection only ever
			// narrows), which halves the total every ~1.4·workers pairs.
			// Rebuilding outside the timer long before the ~2^200 headroom
			// runs out keeps the tracked count AND the length scale pinned.
			rebuildEvery := 100 * workers
			sinceRebuild := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sinceRebuild == rebuildEvery {
					b.StopTimer()
					f = populate()
					sinceRebuild = 0
					b.StartTimer()
				}
				sinceRebuild++
				w := transport.WorkerID(fmt.Sprintf("req-%d", i%workers))
				reply, err := f.RequestWork(transport.WorkRequest{Worker: w, Power: powers[i%len(powers)]})
				if err != nil {
					b.Fatal(err)
				}
				if reply.Status != transport.WorkAssigned {
					b.Fatal("ran out of work")
				}
				// Retire the donated interval so the tracked count stays
				// at `workers`: the finished fold [B,B) — what a real
				// worker reports after exhausting its interval — empties
				// the coordinator's copy and deletes the entry.
				end := reply.Interval.B()
				if _, err := f.UpdateInterval(transport.UpdateRequest{
					Worker: w, IntervalID: reply.IntervalID, Remaining: interval.New(end, end),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJobTableRequestThroughput measures the multi-tenant tax on the
// serving path: one untagged RequestWork against a job table — the
// fair-share scan over active jobs plus the chosen farmer's indexed
// selection — followed by the tagged retire of the donated interval. The
// total tracked-interval count is pinned at 2000 whatever the job count,
// so the jobs=1 case is the single-farmer BenchmarkFarmerRequestThroughput
// workload routed through the table, and jobs=8/jobs=64 split the same
// fleet across tenants. Acceptance gate (BENCH_pr9.json): the fair-share
// pick at 64 jobs stays within ~2x the single-job indexed cost — the scan
// is O(active jobs) of integer compares, dwarfed by the big.Int split.
//
// Every job is a 50x20 flowshop instance: a Ta056-scale root (~2^214)
// keeps every donation far above the duplication threshold, and periodic
// untimed rebuilds pin the length scale exactly like the farmer record.
func BenchmarkJobTableRequestThroughput(b *testing.B) {
	const tracked = 2000
	powers := []int64{800, 1300, 1700, 2000, 2200, 2400, 2800, 3200}
	for _, njobs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("jobs=%d", njobs), func(b *testing.B) {
			populate := func() *jobs.Table {
				tb := jobs.NewTable(jobs.Config{
					MaxActive: njobs,
					Clock:     func() int64 { return 0 },
					LeaseTTL:  time.Hour,
				})
				for j := 0; j < njobs; j++ {
					err := tb.Submit(fmt.Sprintf("job-%02d", j), jobs.Spec{
						Domain: "flowshop", Jobs: 50, Machines: 20, Seed: int64(j + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				// Untagged seeds: fair share spreads ~tracked/njobs
				// in-flight intervals across the tenants.
				for i := 0; i < tracked; i++ {
					r, err := tb.RequestWork(transport.WorkRequest{
						Worker: transport.WorkerID(fmt.Sprintf("seed-%d", i)),
						Power:  powers[i%len(powers)],
					})
					if err != nil {
						b.Fatal(err)
					}
					if r.Status != transport.WorkAssigned {
						b.Fatal("seed request starved")
					}
				}
				return tb
			}
			tb := populate()
			rebuildEvery := 100 * tracked
			sinceRebuild := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sinceRebuild == rebuildEvery {
					b.StopTimer()
					tb = populate()
					sinceRebuild = 0
					b.StartTimer()
				}
				sinceRebuild++
				w := transport.WorkerID(fmt.Sprintf("req-%d", i%tracked))
				reply, err := tb.RequestWork(transport.WorkRequest{Worker: w, Power: powers[i%len(powers)]})
				if err != nil {
					b.Fatal(err)
				}
				if reply.Status != transport.WorkAssigned {
					b.Fatal("ran out of work")
				}
				// Retire the donation under its job's tag so every
				// tenant's tracked count stays pinned.
				end := reply.Interval.B()
				if _, err := tb.UpdateInterval(transport.UpdateRequest{
					Worker: w, Job: reply.Job, IntervalID: reply.IntervalID,
					Remaining: interval.New(end, end),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFarmerTreeThroughput is the coordination-throughput record of
// the hierarchical farmer (DESIGN.md §9): flat single farmer vs a 2-level
// tree of 8 sub-farmers, at equal tracked-fleet size (2k/5k/10k), hammered
// by GOMAXPROCS concurrent clients. Each op is one request+retire pair —
// the farmer-side cost of one worker life cycle — and ns/op is therefore
// the reciprocal of the aggregate coordination throughput. The flat farmer
// is one monitor: all clients serialize on one mutex whatever the fleet
// size. The tree is 8 independent monitors whose root sees only the
// piggybacked folds (one per 64 fleet messages), so aggregate throughput
// scales with min(clients, subtrees) on multicore hardware; on a
// single-core box the tree's edge reduces to its smaller per-sub tables
// (read the scaling on CI, like BenchmarkMulticoreWorker's wall-clock
// numbers). The `root/subtrees=S` cases pin the other half of the claim:
// the root's own per-request cost stays flat as the subtree count grows.
//
// Requester power is 1 against ~2800-class holders, so each pair consumes
// a ~1/2800 sliver of one interval: the tracked count and the length scale
// stay pinned for any b.N without mid-run rebuilds (the Ta056-scale root
// has ~2^200 of headroom).
func BenchmarkFarmerTreeThroughput(b *testing.B) {
	nb := ta056Numbering()
	powers := []int64{800, 1300, 1700, 2000, 2200, 2400, 2800, 3200}
	const subtrees = 8

	// hammer drives b.N request+retire pairs through coordFor, spread
	// over GOMAXPROCS goroutines by an atomic op counter.
	hammer := func(b *testing.B, coordFor func(g int) transport.Coordinator) {
		clients := runtime.GOMAXPROCS(0)
		b.ReportAllocs()
		b.ResetTimer()
		var ops atomic.Int64
		var wg sync.WaitGroup
		errc := make(chan error, clients)
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				coord := coordFor(g)
				w := transport.WorkerID(fmt.Sprintf("c%d", g))
				for ops.Add(1) <= int64(b.N) {
					reply, err := coord.RequestWork(transport.WorkRequest{Worker: w, Power: 1})
					if err != nil {
						errc <- err
						return
					}
					if reply.Status != transport.WorkAssigned {
						errc <- fmt.Errorf("status %v: ran out of work", reply.Status)
						return
					}
					end := reply.Interval.B()
					if _, err := coord.UpdateInterval(transport.UpdateRequest{
						Worker: w, IntervalID: reply.IntervalID,
						Remaining: interval.New(end, end), Power: 1,
					}); err != nil {
						errc <- err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		select {
		case err := <-errc:
			b.Fatal(err)
		default:
		}
	}

	seed := func(coord transport.Coordinator, n, off int) error {
		for i := 0; i < n; i++ {
			_, err := coord.RequestWork(transport.WorkRequest{
				Worker: transport.WorkerID(fmt.Sprintf("seed-%d", off+i)),
				Power:  powers[(off+i)%len(powers)],
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	for _, workers := range []int{2000, 5000, 10000} {
		b.Run(fmt.Sprintf("flat/workers=%d", workers), func(b *testing.B) {
			f := farmer.New(nb.RootRange(), farmer.WithClock(func() int64 { return 0 }))
			if err := seed(f, workers, 0); err != nil {
				b.Fatal(err)
			}
			hammer(b, func(int) transport.Coordinator { return f })
		})
		b.Run(fmt.Sprintf("tree/workers=%d", workers), func(b *testing.B) {
			tr := farmer.NewTree(nb.RootRange(), farmer.TreeConfig{
				Subtrees:       subtrees,
				SubUpdateEvery: 64,
				Clock:          func() int64 { return 0 },
			})
			// Each sub-farmer pulls its sub-range from the root on its
			// fleet's first request and then serves its 1/8 of the
			// tracked fleet.
			for s := 0; s < subtrees; s++ {
				if err := seed(tr.Sub(s), workers/subtrees, s*(workers/subtrees)); err != nil {
					b.Fatal(err)
				}
			}
			hammer(b, func(g int) transport.Coordinator { return tr.Sub(g % subtrees) })
		})
	}

	// Root flatness: the root's request cost as a function of how many
	// sub-farmer copies it arbitrates between. Single client — this is a
	// latency claim, not a throughput one.
	for _, s := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("root/subtrees=%d", s), func(b *testing.B) {
			f := farmer.New(nb.RootRange(), farmer.WithClock(func() int64 { return 0 }))
			if err := seed(f, s, 0); err != nil {
				b.Fatal(err)
			}
			w := transport.WorkerID("refiller")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reply, err := f.RequestWork(transport.WorkRequest{Worker: w, Power: 1})
				if err != nil {
					b.Fatal(err)
				}
				end := reply.Interval.B()
				if _, err := f.UpdateInterval(transport.UpdateRequest{
					Worker: w, IntervalID: reply.IntervalID,
					Remaining: interval.New(end, end), Power: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHardenedCallOverhead prices the hostile-WAN hardening
// (DESIGN.md §10) on the wire path it taxes: one UpdateInterval round over
// loopback TCP. The raw leg is the unhardened seed configuration (no
// deadlines, no size windows, no connection cap); the hardened leg enables
// the always-on defenses — server read deadlines, the per-message byte
// window on both ends, the connection cap, and a client per-call deadline
// (which switches the client from Call to Go + timer). TLS is deliberately
// excluded: it is an opt-in identity mode with its own well-known cost,
// not part of the default hardening tax. Acceptance gate (BENCH_pr6.json):
// hardened ns/op within 5% of raw.
func BenchmarkHardenedCallOverhead(b *testing.B) {
	nb := ta056Numbering()
	run := func(b *testing.B, so transport.ServerOptions, do transport.DialOptions) {
		f := farmer.New(nb.RootRange(), farmer.WithClock(func() int64 { return 0 }))
		srv, err := transport.ServeWith(f, "127.0.0.1:0", so)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		cli, err := transport.DialWith(srv.Addr(), do)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		reply, err := cli.RequestWork(transport.WorkRequest{Worker: "bench", Power: 1})
		if err != nil {
			b.Fatal(err)
		}
		// Checkpoint the unchanged assignment each round: the steady-state
		// worker heartbeat, dominated by wire cost rather than table churn.
		req := transport.UpdateRequest{
			Worker: "bench", IntervalID: reply.IntervalID,
			Remaining: reply.Interval, Power: 1, ExploredDelta: 1,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cli.UpdateInterval(req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("raw", func(b *testing.B) {
		run(b, transport.ServerOptions{MaxMessageBytes: -1}, transport.DialOptions{MaxMessageBytes: -1})
	})
	b.Run("hardened", func(b *testing.B) {
		run(b,
			transport.ServerOptions{ReadTimeout: 30 * time.Second, MaxConns: 64},
			transport.DialOptions{Policy: transport.Policy{Timeout: 30 * time.Second}})
	})
}

// countingConn tallies every byte a proxied connection moves, so a wire
// benchmark can price a protocol in bytes instead of inferring from gob
// buffer sizes.
type countingConn struct {
	net.Conn
	read, written *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// countingProxy is a byte-counting TCP relay in front of target: every
// proxied connection's traffic lands in the shared counters.
type countingProxy struct {
	ln       net.Listener
	sent     atomic.Int64 // client → server
	received atomic.Int64 // server → client
}

func newCountingProxy(b *testing.B, target string) *countingProxy {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	p := &countingProxy{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				s, err := net.Dial("tcp", target)
				if err != nil {
					c.Close()
					return
				}
				cc := countingConn{Conn: c, read: &p.sent, written: &p.received}
				go func() { io.Copy(s, cc); s.Close(); c.Close() }()
				io.Copy(cc, s)
				s.Close()
				c.Close()
			}(c)
		}
	}()
	return p
}

func (p *countingProxy) Addr() string { return p.ln.Addr().String() }
func (p *countingProxy) Total() int64 { return p.sent.Load() + p.received.Load() }

// BenchmarkWireBytesPerFold prices one steady-state fold round — the
// message the grid sends more than every other combined — in wire bytes,
// through a counting TCP proxy, for both dialects (DESIGN.md §11). The
// fold interval sits interior to the 50-job root range, so the text-gob
// leg pays two ~65-digit decimal texts plus the method string both ways,
// while the compact leg pays delta-varints against the negotiated
// reference and elides the unchanged reply interval entirely. Acceptance
// gate (BENCH_pr7.json): compact wire-B/fold at least 5× under text-gob.
// ns/op doubles as the loopback calls/sec ceiling of each dialect.
func BenchmarkWireBytesPerFold(b *testing.B) {
	nb := ta056Numbering()
	root := nb.RootRange()
	run := func(b *testing.B, compact bool) {
		f := farmer.New(root, farmer.WithClock(func() int64 { return 0 }))
		srv, err := transport.ServeWith(f, "127.0.0.1:0", transport.ServerOptions{WireRef: root})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		proxy := newCountingProxy(b, srv.Addr())
		cli, err := transport.DialWith(proxy.Addr(), transport.DialOptions{Compact: compact})
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		reply, err := cli.RequestWork(transport.WorkRequest{Worker: "bench", Power: 1})
		if err != nil {
			b.Fatal(err)
		}
		// The steady-state heartbeat: an interior fold the farmer's
		// intersection returns unchanged, round after round.
		a := reply.Interval.A()
		end := reply.Interval.B()
		a.Add(a, end).Rsh(a, 1)
		req := transport.UpdateRequest{
			Worker: "bench", IntervalID: reply.IntervalID,
			Remaining: interval.New(a, end), Power: 1, ExploredDelta: 1,
		}
		if _, err := cli.UpdateInterval(req); err != nil {
			b.Fatal(err) // settle the table before counting
		}
		b.ReportAllocs()
		b.ResetTimer()
		before := proxy.Total()
		for i := 0; i < b.N; i++ {
			if _, err := cli.UpdateInterval(req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(proxy.Total()-before)/float64(b.N), "wire-B/fold")
	}
	b.Run("textgob", func(b *testing.B) { run(b, false) })
	b.Run("compact", func(b *testing.B) { run(b, true) })
}

// BenchmarkCheckpointSave measures one durable §4.1 farmer snapshot at
// fleet scale: 2000 interval records over the ta056 numbering (numbers
// around 2^214) plus an incumbent path, CRC-footered and written
// tmp-first with fsync before the generation rotation (DESIGN.md §14).
// ns/op is fsync-dominated — pure host weather — so the perf gate reads
// it with the wide ns/op allowance and holds allocs/op and file-B, the
// deterministic metrics, tightly.
func BenchmarkCheckpointSave(b *testing.B) {
	const records = 2000
	nb := ta056Numbering()
	root := nb.RootRange()
	width := new(big.Int).Div(root.Len(), big.NewInt(records))
	snap := checkpoint.Snapshot{
		Epoch:    3,
		NextID:   records,
		BestCost: 4242,
		BestPath: randomLeafPath(rand.New(rand.NewSource(1)), tree.Permutation{N: 50}),
		TotalLen: new(big.Int),
	}
	lo := root.A()
	for i := 0; i < records; i++ {
		hi := new(big.Int).Add(lo, width)
		iv := interval.New(lo, hi)
		snap.Intervals = append(snap.Intervals, checkpoint.IntervalRecord{ID: int64(i), Interval: iv})
		snap.TotalLen.Add(snap.TotalLen, iv.Len())
		lo = hi
	}
	dir := b.TempDir()
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Save(snap); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if fi, err := os.Stat(filepath.Join(dir, "intervals.ckpt")); err == nil {
		b.ReportMetric(float64(fi.Size()), "file-B")
	}
}

// BenchmarkTable1PoolBuild builds and validates the paper's pool (Figure 6
// / Table 1).
func BenchmarkTable1PoolBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pool := gridsim.Table1Pool()
		if gridsim.PoolSize(pool) != gridsim.Table1Total {
			b.Fatal("pool size mismatch")
		}
	}
}

// BenchmarkTable1EngineThroughput measures raw exploration speed
// (nodes/sec) of the interval engine on a 50-job prefix workload — the
// "power" column of Table 1 in engine terms. Reported as ns/node.
func BenchmarkTable1EngineThroughput(b *testing.B) {
	ins, err := flowshop.Ta056().Reduced(14, 8)
	if err != nil {
		b.Fatal(err)
	}
	p := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	nb := core.NewNumbering(p.Shape())
	e := core.NewExplorer(p, nb, nb.RootRange(), bb.Infinity)
	b.ResetTimer()
	var total int64
	for total < int64(b.N) {
		n, done := e.Step(int64(b.N) - total)
		total += n
		if done {
			e.Reassign(nb.RootRange()) // loop the workload
		}
	}
}

// BenchmarkExplorerInteriorStep isolates the engine's interior-mode hot
// loop: the interval lies strictly inside the root range, so after the
// boundary descent the walk runs the boundary-free int-cursor DFS. The
// incumbent is pre-adopted so the improvement path never fires; the loop
// must report 0 allocs/op (the acceptance bar of the hot-path overhaul —
// see DESIGN.md §1).
func BenchmarkExplorerInteriorStep(b *testing.B) {
	ins, err := flowshop.Ta056().Reduced(14, 8)
	if err != nil {
		b.Fatal(err)
	}
	p := flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	nb := core.NewNumbering(p.Shape())
	total := nb.LeafCount()
	a := new(big.Int).Quo(total, big.NewInt(4))
	end := new(big.Int).Sub(total, a)
	inner := interval.New(a, end)
	seed, _ := bb.Solve(flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll), bb.Infinity)

	e := core.NewExplorer(p, nb, inner, bb.Infinity)
	e.AdoptBest(seed.Cost) // equal costs never improve: no Path allocations
	b.ReportAllocs()
	b.ResetTimer()
	var total64 int64
	for total64 < int64(b.N) {
		n, done := e.Step(int64(b.N) - total64)
		total64 += n
		if done {
			b.StopTimer()
			e.Reassign(inner)
			e.AdoptBest(seed.Cost)
			b.StartTimer()
		}
	}
}

// BenchmarkTable2Resolution runs a complete simulated grid resolution —
// pool, availability churn, crashes, protocol — and reports the Table 2
// shape metrics alongside time.
func BenchmarkTable2Resolution(b *testing.B) {
	ins := flowshop.Taillard(12, 10, 5) // ~130k nodes: several virtual minutes
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	var last gridsim.Result
	for i := 0; i < b.N; i++ {
		cfg := benchSimConfig(int64(i + 1))
		res, err := gridsim.New(cfg, factory).Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Finished {
			b.Fatal("simulation did not finish")
		}
		last = res
	}
	b.ReportMetric(last.Table2.WorkerExploitation*100, "worker-%")
	b.ReportMetric(last.Table2.FarmerExploitation*100, "farmer-%")
	b.ReportMetric(float64(last.Table2.WorkAllocations), "allocations")
	b.ReportMetric(last.Table2.RedundantRate*100, "redundant-%")
}

// BenchmarkTreeEndgame is the PR-8 acceptance record: one full simulated
// resolution under the 2-level tree versus the flat control at equal load,
// pool, seed and calibration, reporting both virtual resolution times and
// their ratio. The tree historically paid a ~2.2× virtual-time tail once
// only crumbs remained; the crumb-endgame work (DESIGN.md §12) — steal
// hints, low-water refill, root crumb duplication, gap-carving and
// content-honest folds, plus owner-counted re-descent — pins the ratio
// ≤ 1.4 (TestMassiveTreeGridScenario asserts it at 10k workers; this
// benchmark records it at the same 10k-worker scale; expect ~40s per
// iteration).
func BenchmarkTreeEndgame(b *testing.B) {
	ins := flowshop.Taillard(13, 10, 3) // ~285k sequential nodes
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	seq, _ := bb.Solve(factory(), bb.Infinity)
	run := func(seed int64, subtrees int) gridsim.Result {
		cfg := gridsim.MassiveTreeScenario(seed, 285_000, 1.5, 10_000, subtrees)
		cfg.InitialUpper = seq.Cost + 1
		cfg.MaxTicks = 30_000
		res, err := gridsim.New(cfg, factory).Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Finished {
			b.Fatalf("subtrees=%d: did not finish in %d ticks", subtrees, res.Ticks)
		}
		if res.Best.Cost != seq.Cost {
			b.Fatalf("subtrees=%d: proved %d, want %d", subtrees, res.Best.Cost, seq.Cost)
		}
		return res
	}
	var tree, flat gridsim.Result
	for i := 0; i < b.N; i++ {
		tree = run(int64(i+1), 8)
		flat = run(int64(i+1), 0)
	}
	b.ReportMetric(float64(tree.Ticks), "tree-vticks")
	b.ReportMetric(float64(flat.Ticks), "flat-vticks")
	b.ReportMetric(float64(tree.Ticks)/float64(flat.Ticks), "tree/flat")
}

func benchSimConfig(seed int64) gridsim.Config {
	return gridsim.Config{
		Pool: gridsim.SmallPool(24),
		Availability: gridsim.AvailabilityModel{
			BaseFraction: 0.35, Amplitude: 0.45, NoiseFraction: 0.08,
			NoisePeriodSeconds: 15, DaySeconds: 400, CrashShare: 0.25,
			RampSeconds: 20, PhaseJitterRadians: 0.3, HostLoadFraction: 0.02,
		},
		Seed:        seed,
		TickSeconds: 1,
		// Slow enough that the resolution spans several hundred virtual
		// seconds: the Table 2 rates only stabilize once the run is long
		// relative to the churn and checkpoint cadences.
		NodesPerGHzPerSecond: 6,
		UpdatePeriodSeconds:  5,
		LeaseTTLSeconds:      25,
		WorkerRTTSeconds:     0.05,
		MaxTicks:             50_000,
	}
}

// BenchmarkTable3Domains solves one instance per problem domain of the
// Table 3 narrative with the identical runtime, demonstrating problem
// independence. Reported per resolution.
func BenchmarkTable3Domains(b *testing.B) {
	fsIns := flowshop.Taillard(10, 5, 7)
	tspIns := tsp.RandomEuclidean(10, 500, 7)
	qapIns := qap.Random(8, 20, 7)
	knIns := knapsack.Random(22, 7)
	domains := []struct {
		name    string
		factory func() bb.Problem
	}{
		{"flowshop", func() bb.Problem { return flowshop.NewProblem(fsIns, flowshop.BoundOneMachine, flowshop.PairsAll) }},
		{"tsp", func() bb.Problem { return tsp.NewProblem(tspIns) }},
		{"qap", func() bb.Problem { return qap.NewProblem(qapIns) }},
		{"knapsack", func() bb.Problem { return knapsack.NewProblem(knIns) }},
	}
	for _, d := range domains {
		b.Run(d.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := d.factory()
				nb := core.NewNumbering(p.Shape())
				e := core.NewExplorer(p, nb, nb.RootRange(), bb.Infinity)
				sol, _ := e.Run(1 << 14)
				if !sol.Valid() {
					b.Fatal("no solution")
				}
			}
		})
	}
}

// BenchmarkFig7AvailabilityTrace measures trace generation: a full
// simulated run dominated by availability churn (tiny workload), i.e. the
// cost of producing Figure 7 itself.
func BenchmarkFig7AvailabilityTrace(b *testing.B) {
	ins := flowshop.Taillard(9, 4, 3)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	for i := 0; i < b.N; i++ {
		cfg := benchSimConfig(int64(i + 1))
		cfg.NodesPerGHzPerSecond = 2 // slow exploration: churn dominates
		res, err := gridsim.New(cfg, factory).Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trace) == 0 {
			b.Fatal("no trace")
		}
	}
}

// BenchmarkAblationWorkUnitEncoding quantifies the paper's core claim: a
// work unit coded as an interval is constant-size, while the explicit
// active-node list it replaces grows with the frontier. Bytes per work
// unit are reported for both codings at Ta056 scale.
func BenchmarkAblationWorkUnitEncoding(b *testing.B) {
	nb := ta056Numbering()
	rng := rand.New(rand.NewSource(9))
	a := new(big.Int).Rand(rng, nb.LeafCount())
	e := new(big.Int).Add(a, big.NewInt(1))
	e.Add(e, new(big.Int).Rand(rng, new(big.Int).Sub(nb.LeafCount(), e)))
	iv := interval.New(a, e)
	active := core.Unfold(nb, iv)

	b.Run("interval", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			text, err := iv.MarshalText()
			if err != nil {
				b.Fatal(err)
			}
			size = len(text)
		}
		b.ReportMetric(float64(size), "bytes/unit")
	})
	b.Run("nodelist", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(active); err != nil {
				b.Fatal(err)
			}
			size = buf.Len()
		}
		b.ReportMetric(float64(size), "bytes/unit")
		b.ReportMetric(float64(len(active)), "nodes/unit")
	})
}

// BenchmarkAblationThreshold sweeps the duplication threshold of the
// partitioning operator: higher thresholds trade extra redundant work for
// fewer crumbs of work at the endgame.
func BenchmarkAblationThreshold(b *testing.B) {
	ins := flowshop.Taillard(11, 6, 5)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	for _, frac := range []float64{1e-9, 1e-6, 1e-3, 1e-1} {
		b.Run(fmt.Sprintf("frac=%g", frac), func(b *testing.B) {
			var res gridsim.Result
			for i := 0; i < b.N; i++ {
				cfg := benchSimConfig(int64(i + 1))
				cfg.ThresholdFraction = frac
				var err error
				res, err = gridsim.New(cfg, factory).Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Table2.RedundantRate*100, "redundant-%")
			b.ReportMetric(float64(res.Counters.Duplications), "duplications")
			b.ReportMetric(float64(res.Ticks), "ticks")
		})
	}
}

// BenchmarkAblationPartitioning compares the paper's power-proportional
// partitioning against naive midpoint splitting on a heterogeneous pool.
func BenchmarkAblationPartitioning(b *testing.B) {
	ins := flowshop.Taillard(11, 6, 5)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	for _, equal := range []bool{false, true} {
		name := "proportional"
		if equal {
			name = "midpoint"
		}
		b.Run(name, func(b *testing.B) {
			var res gridsim.Result
			for i := 0; i < b.N; i++ {
				cfg := benchSimConfig(int64(i + 1))
				cfg.EqualSplit = equal
				var err error
				res, err = gridsim.New(cfg, factory).Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Ticks), "ticks")
			b.ReportMetric(float64(res.Table2.WorkAllocations), "allocations")
		})
	}
}

// BenchmarkAblationCheckpointPeriod sweeps the worker checkpoint cadence:
// frequent checkpoints bound crash losses but load the farmer.
func BenchmarkAblationCheckpointPeriod(b *testing.B) {
	ins := flowshop.Taillard(11, 6, 5)
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	for _, period := range []float64{1, 5, 30, 120} {
		b.Run(fmt.Sprintf("period=%gs", period), func(b *testing.B) {
			var res gridsim.Result
			for i := 0; i < b.N; i++ {
				cfg := benchSimConfig(int64(i + 1))
				cfg.UpdatePeriodSeconds = period
				var err error
				res, err = gridsim.New(cfg, factory).Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Counters.WorkerCheckpoints), "checkpoints")
			b.ReportMetric(res.Table2.FarmerExploitation*100, "farmer-%")
			b.ReportMetric(res.Table2.RedundantRate*100, "redundant-%")
		})
	}
}

// BenchmarkAblationBounds compares the lower-bound families on the same
// instance: stronger bounds explore fewer nodes at a higher per-node cost.
func BenchmarkAblationBounds(b *testing.B) {
	ins := flowshop.Taillard(11, 6, 3)
	kinds := []struct {
		name string
		kind flowshop.BoundKind
		ps   flowshop.PairStrategy
	}{
		{"one-machine", flowshop.BoundOneMachine, flowshop.PairsAll},
		{"johnson-adjacent", flowshop.BoundTwoMachine, flowshop.PairsAdjacent},
		{"johnson-all", flowshop.BoundTwoMachine, flowshop.PairsAll},
		{"combined", flowshop.BoundCombined, flowshop.PairsAll},
	}
	for _, k := range kinds {
		b.Run(k.name, func(b *testing.B) {
			var explored int64
			for i := 0; i < b.N; i++ {
				sol, stats := bb.Solve(flowshop.NewProblem(ins, k.kind, k.ps), bb.Infinity)
				if !sol.Valid() {
					b.Fatal("no solution")
				}
				explored = stats.Explored
			}
			b.ReportMetric(float64(explored), "nodes")
		})
	}
}

// BenchmarkHeadlineParallelSpeedup measures the in-process farmer–worker
// stack (and the p2p variant) against the sequential baseline on the same
// primed workload. Read it according to the host: on a multi-core machine
// the workers=N variants show wall-clock speedup; on a single-core machine
// (GOMAXPROCS=1, as on this repository's reference box) no speedup is
// physically possible and the variants quantify pure coordination overhead
// instead — while the farmer counters show incumbent sharing cutting the
// total explored nodes roughly in half versus the sequential primed run.
func BenchmarkHeadlineParallelSpeedup(b *testing.B) {
	ins := flowshop.Taillard(14, 8, 5) // ~430k nodes: large enough to amortize coordination
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	seq, _ := bb.Solve(factory(), bb.Infinity)
	// Prime every variant with the optimum + 1 (the paper's run-2
	// protocol): all runs then prove the same optimum over essentially
	// the same node set, so the comparison measures the runtimes, not
	// search-order luck.
	prime := seq.Cost + 1
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sol, _ := bb.Solve(factory(), prime)
			if sol.Cost != seq.Cost {
				b.Fatal("wrong optimum")
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := solveParallel(b, factory, workers, prime)
				if res != seq.Cost {
					b.Fatal("wrong optimum")
				}
			}
		})
	}
	b.Run("p2p-peers=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := p2p.Solve(factory, p2p.Options{Peers: 4, InitialUpper: prime, Seed: int64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			if res.Best.Cost != seq.Cost {
				b.Fatal("wrong optimum")
			}
		}
	})
}

// BenchmarkMulticoreWorker measures the intra-worker multicore engine: one
// farmer plus ONE RunParallel worker whose interval is tiled over a sweep
// of core counts, on the flowshop domain primed with the optimum + 1 (so
// every variant proves the same optimum over essentially the same node
// set). The headline metric is nodes/sec of the whole resolution; cores=1
// falls back to the classic single-explorer Run and is the baseline the
// ≥3×-at-4-cores acceptance gate compares against. Like
// BenchmarkHeadlineParallelSpeedup, read it according to the host: shard
// goroutines can only scale wall-clock throughput when GOMAXPROCS cores
// physically exist (this repository's reference box has one; CI has more).
func BenchmarkMulticoreWorker(b *testing.B) {
	ins := flowshop.Taillard(14, 8, 5) // ~430k sequential nodes
	factory := func() bb.Problem {
		return flowshop.NewProblem(ins, flowshop.BoundOneMachine, flowshop.PairsAll)
	}
	seq, _ := bb.Solve(factory(), bb.Infinity)
	prime := seq.Cost + 1
	for _, cores := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				nb := core.NewNumbering(factory().Shape())
				f := farmer.New(nb.RootRange(), farmer.WithInitialBest(prime, nil))
				res, err := worker.RunParallel(context.Background(), worker.Config{
					ID:                "bench-mc",
					Power:             1,
					Cores:             cores,
					UpdatePeriodNodes: 1 << 14,
				}, f, factory)
				if err != nil {
					b.Fatal(err)
				}
				if f.Best().Cost != seq.Cost {
					b.Fatalf("cores=%d: incumbent %d != sequential %d", cores, f.Best().Cost, seq.Cost)
				}
				nodes += res.Stats.Explored
			}
			b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/sec")
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/resolution")
		})
	}
}

func solveParallel(b *testing.B, factory func() bb.Problem, workers int, prime int64) int64 {
	nb := core.NewNumbering(factory().Shape())
	f := farmer.New(nb.RootRange(), farmer.WithInitialBest(prime, nil))
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			cfg := worker.Config{
				ID:                transport.WorkerID(fmt.Sprintf("b%d", w)),
				Power:             1,
				UpdatePeriodNodes: 2000,
			}
			s := worker.NewSession(cfg, f, factory())
			for {
				_, finished, err := s.Advance(1 << 20)
				if err != nil || finished {
					done <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	return f.Best().Cost
}
